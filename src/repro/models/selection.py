"""Model selection and uncertainty: cross-validation, bootstrap, AIC.

The paper scores each model on the very pairs it was fitted on.  That
is fine for the 1-to-4-parameter models involved, but the conclusion is
stronger with held-out evaluation — and the paper's future work promises
"more metrics".  This module provides:

* :func:`k_fold_cross_validate` — k-fold CV over OD pairs, scoring each
  fold's held-out pairs with the full metric set;
* :func:`bootstrap_metric` — nonparametric bootstrap confidence
  intervals for any (observed, estimated) metric, quantifying how much
  Table II cells wobble;
* :func:`aic_log_space` / :func:`bic_log_space` — information criteria
  under the log-normal error model implied by least squares on
  ``log T``, penalising Gravity 4Param's extra parameters fairly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.extraction.mobility import ODPairs
from repro.models.base import MobilityModel, ModelFitError
from repro.models.evaluation import ModelEvaluation, evaluate_fitted


def _subset_pairs(pairs: ODPairs, indices: np.ndarray) -> ODPairs:
    """A new ODPairs holding only the selected rows."""
    return ODPairs(
        source=pairs.source[indices],
        dest=pairs.dest[indices],
        m=pairs.m[indices],
        n=pairs.n[indices],
        d_km=pairs.d_km[indices],
        flow=pairs.flow[indices],
    )


@dataclass(frozen=True)
class CrossValidationResult:
    """Per-fold held-out evaluations plus their aggregate."""

    model_name: str
    fold_evaluations: tuple[ModelEvaluation, ...]

    @property
    def n_folds(self) -> int:
        """Number of folds that completed."""
        return len(self.fold_evaluations)

    @property
    def mean_pearson(self) -> float:
        """Average held-out Pearson r across folds."""
        return float(np.mean([e.pearson_r for e in self.fold_evaluations]))

    @property
    def mean_hit_rate(self) -> float:
        """Average held-out HitRate@50% across folds."""
        return float(np.mean([e.hit_rate_50 for e in self.fold_evaluations]))

    @property
    def mean_log_rmse(self) -> float:
        """Average held-out log-space RMSE across folds."""
        return float(np.mean([e.log_rmse for e in self.fold_evaluations]))


def k_fold_cross_validate(
    model: MobilityModel,
    pairs: ODPairs,
    k: int = 5,
    rng: np.random.Generator | None = None,
) -> CrossValidationResult:
    """k-fold cross-validation of a mobility model over OD pairs.

    Pairs are shuffled once and split into k folds; the model is fitted
    on k-1 folds and evaluated on the held-out fold.  Folds that leave
    too few training pairs for the model raise
    :class:`~repro.models.base.ModelFitError` (k is then too large for
    the dataset).
    """
    if k < 2:
        raise ValueError(f"need k >= 2 folds, got {k}")
    n = len(pairs)
    if n < 2 * k:
        raise ValueError(f"too few pairs ({n}) for {k}-fold CV")
    rng = rng or np.random.default_rng(0)
    order = rng.permutation(n)
    folds = np.array_split(order, k)
    evaluations = []
    for fold in folds:
        held_out = np.sort(fold)
        train_mask = np.ones(n, dtype=bool)
        train_mask[held_out] = False
        train = _subset_pairs(pairs, np.nonzero(train_mask)[0])
        test = _subset_pairs(pairs, held_out)
        fitted = model.fit(train)
        evaluations.append(evaluate_fitted(fitted, test))
    return CrossValidationResult(
        model_name=model.name, fold_evaluations=tuple(evaluations)
    )


@dataclass(frozen=True, slots=True)
class BootstrapInterval:
    """A bootstrap point estimate with a percentile confidence interval."""

    point: float
    low: float
    high: float
    confidence: float
    n_resamples: int

    def __contains__(self, value: float) -> bool:
        return self.low <= value <= self.high


def bootstrap_metric(
    observed: np.ndarray,
    estimated: np.ndarray,
    metric: Callable[[np.ndarray, np.ndarray], float],
    n_resamples: int = 1000,
    confidence: float = 0.95,
    rng: np.random.Generator | None = None,
) -> BootstrapInterval:
    """Percentile-bootstrap CI for any (observed, estimated) metric.

    Resamples OD pairs with replacement and recomputes the metric; used
    to put error bars on Table II cells.
    """
    if not (0.0 < confidence < 1.0):
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if n_resamples < 10:
        raise ValueError(f"need >= 10 resamples, got {n_resamples}")
    observed = np.asarray(observed, dtype=np.float64)
    estimated = np.asarray(estimated, dtype=np.float64)
    if observed.shape != estimated.shape or observed.size == 0:
        raise ValueError("observed/estimated must be equal-length non-empty")
    rng = rng or np.random.default_rng(0)
    n = observed.size
    values = np.empty(n_resamples)
    for i in range(n_resamples):
        sample = rng.integers(0, n, n)
        values[i] = metric(observed[sample], estimated[sample])
    tail = (1.0 - confidence) / 2.0
    return BootstrapInterval(
        point=float(metric(observed, estimated)),
        low=float(np.quantile(values, tail)),
        high=float(np.quantile(values, 1.0 - tail)),
        confidence=confidence,
        n_resamples=n_resamples,
    )


def _log_residuals(observed: np.ndarray, estimated: np.ndarray) -> np.ndarray:
    keep = (observed > 0) & (estimated > 0)
    if not keep.any():
        raise ModelFitError("no positive pairs for information criteria")
    return np.log(observed[keep]) - np.log(estimated[keep])


def aic_log_space(
    observed: np.ndarray, estimated: np.ndarray, n_parameters: int
) -> float:
    """Akaike information criterion under the log-normal error model.

    ``AIC = n ln(SSE/n) + 2p`` (up to an additive constant shared by all
    models on the same data).  Lower is better.
    """
    residuals = _log_residuals(observed, estimated)
    n = residuals.size
    sse = float((residuals**2).sum())
    return n * np.log(max(sse, 1e-300) / n) + 2.0 * n_parameters


def bic_log_space(
    observed: np.ndarray, estimated: np.ndarray, n_parameters: int
) -> float:
    """Bayesian information criterion; penalises parameters by ``ln n``."""
    residuals = _log_residuals(observed, estimated)
    n = residuals.size
    sse = float((residuals**2).sum())
    return n * np.log(max(sse, 1e-300) / n) + np.log(n) * n_parameters


#: Free-parameter counts for the paper's models (including the scale C).
MODEL_PARAMETER_COUNTS = {
    "Gravity 4Param": 4,
    "Gravity 2Param": 2,
    "Radiation": 1,
    "Radiation Normalized": 1,
    "Intervening Opportunities": 2,
}


def rank_models_by_aic(
    evaluations: Sequence[ModelEvaluation],
) -> list[tuple[str, float]]:
    """(name, AIC) pairs sorted best-first, using the known param counts.

    Unknown model names default to 2 parameters.
    """
    ranked = []
    for evaluation in evaluations:
        p = MODEL_PARAMETER_COUNTS.get(evaluation.model_name, 2)
        ranked.append(
            (
                evaluation.model_name,
                aic_log_space(evaluation.observed, evaluation.estimated, p),
            )
        )
    return sorted(ranked, key=lambda pair: pair[1])
