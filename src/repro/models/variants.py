"""Constrained gravity and corrected radiation variants.

Extensions beyond the paper's three models, from the standard mobility
literature:

* :class:`ProductionConstrainedGravity` — each origin's total outflow is
  forced to match the observed total; only the *distribution* across
  destinations comes from the gravity kernel.  This is how gravity
  models are deployed operationally (trip distribution step of 4-step
  transport models).
* :class:`DoublyConstrainedGravity` — both row and column sums match
  the observations, balanced by iterative proportional fitting
  (Furness method).
* :class:`NormalizedRadiation` — the finite-system correction of
  Masucci et al. (2013): the raw radiation probability rows do not sum
  to 1 in a finite region, so each is divided by
  ``1 - m_i / M`` (M = total population), repairing the model's
  systematic underestimation in small systems.

All reuse the :class:`~repro.models.base.MobilityModel` interface, but
note the constrained models are *descriptive* rather than predictive:
they need the observed marginals of the flow matrix they are fitted on,
so `fit` stores those and `predict` only applies to the same area
system (enforced by shape checks).
"""

from __future__ import annotations

import numpy as np

from repro.extraction.mobility import ODFlows, ODPairs
from repro.models.base import (
    FittedMobilityModel,
    MobilityModel,
    ModelFitError,
    fit_log_scale,
    positive_pairs_mask,
)
from repro.models.radiation import intervening_population_matrix, radiation_base


def _kernel_matrix(
    populations: np.ndarray, distance_km: np.ndarray, gamma: float
) -> np.ndarray:
    """Unconstrained gravity kernel ``m n / d^gamma`` with zero diagonal."""
    distances = distance_km.copy()
    np.fill_diagonal(distances, 1.0)
    kernel = np.outer(populations, populations) / distances**gamma
    np.fill_diagonal(kernel, 0.0)
    return kernel


class FittedMatrixModel(FittedMobilityModel):
    """A fitted model whose predictions live in a full OD matrix.

    Constrained models predict whole matrices; per-pair prediction is a
    lookup into it via the pair's (source, dest) indices.
    """

    def __init__(self, name: str, matrix: np.ndarray) -> None:
        self._name = name
        self.matrix = matrix

    @property
    def name(self) -> str:
        return self._name

    def predict(self, pairs: ODPairs) -> np.ndarray:
        n = self.matrix.shape[0]
        if pairs.source.size and (pairs.source.max() >= n or pairs.dest.max() >= n):
            raise ModelFitError(
                f"{self._name}: pairs reference areas outside the fitted system"
            )
        return self.matrix[pairs.source, pairs.dest]


class ProductionConstrainedGravity(MobilityModel):
    """Gravity with origin totals pinned to the observed outflows.

    ``T_ij = O_i * K_ij / sum_k K_ik`` where ``K`` is the gravity kernel
    and ``O_i`` the observed total outflow of origin ``i``.  The distance
    exponent γ is fitted by a golden-section search minimising log-space
    SSE over positive pairs.
    """

    def __init__(self, flows: ODFlows) -> None:
        self.flows = flows
        self._populations = flows.populations()
        self._distances = flows.distance_matrix_km()

    @property
    def name(self) -> str:
        return "Gravity ProdConstrained"

    def _matrix_for_gamma(self, gamma: float) -> np.ndarray:
        kernel = _kernel_matrix(self._populations, self._distances, gamma)
        row_sums = kernel.sum(axis=1, keepdims=True)
        shares = np.divide(kernel, row_sums, out=np.zeros_like(kernel), where=row_sums > 0)
        outflows = self.flows.matrix.sum(axis=1).astype(np.float64)
        return outflows[:, None] * shares

    def fit(self, pairs: ODPairs) -> FittedMatrixModel:
        keep = positive_pairs_mask(pairs)
        if int(keep.sum()) < 2:
            raise ModelFitError(f"{self.name}: need >= 2 positive pairs")
        log_flow = np.log(pairs.flow[keep])
        source = pairs.source[keep]
        dest = pairs.dest[keep]

        def sse(gamma: float) -> float:
            matrix = self._matrix_for_gamma(gamma)
            estimates = matrix[source, dest]
            if np.any(estimates <= 0):
                return 1e18
            residual = np.log(estimates) - log_flow
            return float((residual**2).sum())

        gamma = _golden_section(sse, 0.05, 5.0)
        return FittedMatrixModel(self.name, self._matrix_for_gamma(gamma))


class DoublyConstrainedGravity(MobilityModel):
    """Gravity balanced to both observed margins (Furness/IPF).

    After choosing γ as in the production-constrained variant, the
    kernel matrix is iteratively scaled so that every row sum matches
    the observed outflows and every column sum the observed inflows.
    """

    def __init__(self, flows: ODFlows, max_iterations: int = 200, tol: float = 1e-10) -> None:
        self.flows = flows
        self.max_iterations = max_iterations
        self.tol = tol
        self._populations = flows.populations()
        self._distances = flows.distance_matrix_km()

    @property
    def name(self) -> str:
        return "Gravity DoublyConstrained"

    def _balance(self, kernel: np.ndarray) -> np.ndarray:
        """Furness balancing of ``kernel`` to the observed margins."""
        target_rows = self.flows.matrix.sum(axis=1).astype(np.float64)
        target_cols = self.flows.matrix.sum(axis=0).astype(np.float64)
        matrix = kernel.copy()
        for _iteration in range(self.max_iterations):
            row_sums = matrix.sum(axis=1)
            row_factor = np.divide(
                target_rows, row_sums, out=np.zeros_like(target_rows), where=row_sums > 0
            )
            matrix *= row_factor[:, None]
            col_sums = matrix.sum(axis=0)
            col_factor = np.divide(
                target_cols, col_sums, out=np.zeros_like(target_cols), where=col_sums > 0
            )
            matrix *= col_factor[None, :]
            row_error = np.abs(matrix.sum(axis=1) - target_rows).max()
            col_error = np.abs(matrix.sum(axis=0) - target_cols).max()
            if max(row_error, col_error) < self.tol * max(target_rows.max(), 1.0):
                break
        return matrix

    def fit(self, pairs: ODPairs) -> FittedMatrixModel:
        keep = positive_pairs_mask(pairs)
        if int(keep.sum()) < 2:
            raise ModelFitError(f"{self.name}: need >= 2 positive pairs")
        log_flow = np.log(pairs.flow[keep])
        source = pairs.source[keep]
        dest = pairs.dest[keep]

        def sse(gamma: float) -> float:
            kernel = _kernel_matrix(self._populations, self._distances, gamma)
            matrix = self._balance(kernel)
            estimates = matrix[source, dest]
            if np.any(estimates <= 0):
                return 1e18
            residual = np.log(estimates) - log_flow
            return float((residual**2).sum())

        gamma = _golden_section(sse, 0.05, 5.0)
        kernel = _kernel_matrix(self._populations, self._distances, gamma)
        return FittedMatrixModel(self.name, self._balance(kernel))


class FittedNormalizedRadiation(FittedMobilityModel):
    """Normalized radiation with bound scale and correction factors."""

    def __init__(
        self, s_matrix: np.ndarray, correction: np.ndarray, log_c: float
    ) -> None:
        self.s_matrix = s_matrix
        self.correction = correction
        self.log_c = log_c

    @property
    def name(self) -> str:
        return "Radiation Normalized"

    def predict(self, pairs: ODPairs) -> np.ndarray:
        s = self.s_matrix[pairs.source, pairs.dest]
        base = radiation_base(pairs.m, pairs.n, s) * self.correction[pairs.source]
        return np.exp(self.log_c) * base


class NormalizedRadiation(MobilityModel):
    """Radiation with the Masucci finite-system correction.

    The raw radiation probabilities from origin ``i`` sum to
    ``1 - m_i / M`` over a finite region; dividing by that factor makes
    each row a proper distribution.  The correction is largest for big
    origins (Sydney: ~1.36 in our national system), directly attacking
    the underestimation the paper observes.
    """

    def __init__(self, populations: np.ndarray, distance_km: np.ndarray) -> None:
        self.populations = np.asarray(populations, dtype=np.float64)
        self.distance_km = np.asarray(distance_km, dtype=np.float64)
        self._s_matrix = intervening_population_matrix(self.populations, self.distance_km)
        total = self.populations.sum()
        share = self.populations / total
        if np.any(share >= 1.0):
            raise ModelFitError("normalization undefined: one area holds everyone")
        self._correction = 1.0 / (1.0 - share)

    @classmethod
    def from_flows(cls, flows: ODFlows) -> "NormalizedRadiation":
        """Build the model over a flow matrix's area system."""
        return cls(flows.populations(), flows.distance_matrix_km())

    @property
    def name(self) -> str:
        return "Radiation Normalized"

    def fit(self, pairs: ODPairs) -> FittedNormalizedRadiation:
        keep = positive_pairs_mask(pairs)
        if not keep.any():
            raise ModelFitError(f"{self.name}: no positive pairs")
        s = self._s_matrix[pairs.source[keep], pairs.dest[keep]]
        base = radiation_base(pairs.m[keep], pairs.n[keep], s)
        base = base * self._correction[pairs.source[keep]]
        log_c = fit_log_scale(np.log(pairs.flow[keep]), np.log(base))
        return FittedNormalizedRadiation(self._s_matrix, self._correction, log_c)


def _golden_section(
    objective, lo: float, hi: float, tol: float = 1e-4, max_iterations: int = 100
) -> float:
    """Minimise a unimodal scalar function on [lo, hi]."""
    inv_phi = (np.sqrt(5.0) - 1.0) / 2.0
    a, b = lo, hi
    c = b - inv_phi * (b - a)
    d = a + inv_phi * (b - a)
    fc = objective(c)
    fd = objective(d)
    for _iteration in range(max_iterations):
        if b - a < tol:
            break
        if fc < fd:
            b, d, fd = d, c, fc
            c = b - inv_phi * (b - a)
            fc = objective(c)
        else:
            a, c, fc = c, d, fd
            d = a + inv_phi * (b - a)
            fd = objective(d)
    return (a + b) / 2.0
