"""Radiation with high-resolution intervening population.

The paper attributes Radiation's failure on Australia partly to the
coarse area system: with only 20 mass points, the intervening
population ``s`` jumps in huge steps.  Its future work proposes
"incorporating census data of higher resolutions".  This module does
that: ``s`` is computed from a fine population *raster* instead of the
area points, so the circle around an origin accumulates population
smoothly.

Two raster sources are supported:

* :func:`population_grid_from_world` — the synthetic world's true
  population, rasterised (the "census of higher resolution" a real
  deployment would buy);
* :func:`population_grid_from_corpus` — tweet counts as a population
  proxy, rescaled to the total census population (the paper's Section
  III result says this is legitimate — using the data to refine its own
  model).

The A10 ablation benchmark asks the paper's open question: does higher
resolution rescue the radiation model on Australian geography?
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.data.corpus import TweetCorpus
from repro.extraction.mobility import ODFlows, ODPairs
from repro.geo.bbox import AUSTRALIA_BBOX
from repro.geo.distance import points_to_point_km
from repro.geo.grid import DensityGrid, GridSpec
from repro.models.base import (
    FittedMobilityModel,
    MobilityModel,
    ModelFitError,
    fit_log_scale,
    positive_pairs_mask,
)
from repro.models.radiation import radiation_base

if TYPE_CHECKING:
    # Type-only: the function body duck-types over .sites, so models
    # carries no runtime dependency on the synth layer.
    from repro.synth.population import World


class PopulationGrid:
    """A lat/lon raster of population mass with fast disc sums.

    Cell masses are stored together with cell-centre coordinates; disc
    queries use exact haversine distances from an origin to every
    occupied cell (the occupied-cell count is a few thousand, so a
    vectorised scan per query is fast and exact).
    """

    def __init__(self, spec: GridSpec, masses: np.ndarray) -> None:
        if masses.shape != (spec.n_rows, spec.n_cols):
            raise ValueError(
                f"masses {masses.shape} incompatible with grid "
                f"{spec.n_rows}x{spec.n_cols}"
            )
        if np.any(masses < 0):
            raise ValueError("cell masses must be non-negative")
        self.spec = spec
        rows, cols = np.nonzero(masses)
        self.cell_masses = masses[rows, cols].astype(np.float64)
        lats = np.empty(rows.size)
        lons = np.empty(rows.size)
        for k, (r, c) in enumerate(zip(rows, cols)):
            lats[k], lons[k] = spec.cell_center(int(r), int(c))
        self.cell_lats = lats
        self.cell_lons = lons

    @property
    def total_mass(self) -> float:
        """Sum of all cell masses."""
        return float(self.cell_masses.sum())

    @property
    def n_occupied_cells(self) -> int:
        """Number of non-empty raster cells."""
        return int(self.cell_masses.size)

    def mass_within(self, center: tuple[float, float], radius_km: float) -> float:
        """Total raster mass within ``radius_km`` of a point."""
        if radius_km < 0:
            raise ValueError("radius must be non-negative")
        distances = points_to_point_km(self.cell_lats, self.cell_lons, center)
        return float(self.cell_masses[distances <= radius_km].sum())

    def cumulative_mass_profile(
        self, center: tuple[float, float], radii_km: np.ndarray
    ) -> np.ndarray:
        """Mass within each of several radii of one centre (one scan)."""
        distances = points_to_point_km(self.cell_lats, self.cell_lons, center)
        order = np.argsort(distances)
        sorted_distances = distances[order]
        cumulative = np.cumsum(self.cell_masses[order])
        indices = np.searchsorted(sorted_distances, np.asarray(radii_km), side="right")
        profile = np.zeros(len(radii_km))
        nonzero = indices > 0
        profile[nonzero] = cumulative[indices[nonzero] - 1]
        return profile


def population_grid_from_world(world: World, cell_km: float = 25.0) -> PopulationGrid:
    """Rasterise the synthetic world's true site populations."""
    spec = GridSpec.for_resolution_km(AUSTRALIA_BBOX, cell_km)
    masses = np.zeros((spec.n_rows, spec.n_cols))
    for site in world.sites:
        cell = spec.cell_of(site.activity_center.lat, site.activity_center.lon)
        if cell is not None:
            masses[cell] += site.population
    return PopulationGrid(spec, masses)


def population_grid_from_corpus(
    corpus: TweetCorpus, total_population: float, cell_km: float = 25.0
) -> PopulationGrid:
    """Tweet density rescaled to census totals as a population raster.

    Section III's feasibility result, applied: the tweet raster is a
    serviceable stand-in for a fine census raster.
    """
    if total_population <= 0:
        raise ValueError("total_population must be positive")
    spec = GridSpec.for_resolution_km(AUSTRALIA_BBOX, cell_km)
    grid = DensityGrid(spec)
    grid.add_many(corpus.lats, corpus.lons)
    counts = grid.counts.astype(np.float64)
    total = counts.sum()
    if total == 0:
        raise ValueError("corpus has no tweets inside the Australian box")
    return PopulationGrid(spec, counts * (total_population / total))


class FittedGridRadiation(FittedMobilityModel):
    """Grid radiation with bound per-pair s values and scale C."""

    def __init__(self, s_matrix: np.ndarray, log_c: float) -> None:
        self.s_matrix = s_matrix
        self.log_c = log_c

    @property
    def name(self) -> str:
        return "Radiation HighRes"

    def predict(self, pairs: ODPairs) -> np.ndarray:
        s = self.s_matrix[pairs.source, pairs.dest]
        return np.exp(self.log_c) * radiation_base(pairs.m, pairs.n, s)


class GridRadiationModel(MobilityModel):
    """Radiation whose intervening population comes from a raster.

    ``s_ij`` is the raster mass within ``d_ij`` of origin i's centre,
    minus the origin and destination *area* populations (their own mass
    should not intervene, mirroring Eq 3's exclusion).
    """

    def __init__(
        self,
        flows: ODFlows,
        population_grid: PopulationGrid,
    ) -> None:
        self.flows = flows
        self.grid = population_grid
        self._s_matrix = self._build_s_matrix()

    def _build_s_matrix(self) -> np.ndarray:
        areas = self.flows.areas
        populations = self.flows.populations()
        distances = self.flows.distance_matrix_km()
        n = len(areas)
        s = np.zeros((n, n))
        for i, area in enumerate(areas):
            center = (area.center.lat, area.center.lon)
            profile = self.grid.cumulative_mass_profile(center, distances[i])
            s[i] = profile - populations[i] - populations
            s[i, i] = 0.0
        np.clip(s, 0.0, None, out=s)
        return s

    @property
    def name(self) -> str:
        return "Radiation HighRes"

    @property
    def s_matrix(self) -> np.ndarray:
        """The raster-derived intervening-population matrix."""
        return self._s_matrix

    def fit(self, pairs: ODPairs) -> FittedGridRadiation:
        """Fit only the global scale C, as for point radiation."""
        keep = positive_pairs_mask(pairs)
        if not keep.any():
            raise ModelFitError("GridRadiation: no positive pairs")
        s = self._s_matrix[pairs.source[keep], pairs.dest[keep]]
        base = radiation_base(pairs.m[keep], pairs.n[keep], s)
        if np.any(base <= 0):
            raise ModelFitError("GridRadiation: degenerate kernel value")
        log_c = fit_log_scale(np.log(pairs.flow[keep]), np.log(base))
        return FittedGridRadiation(self._s_matrix, log_c)
