"""Effective distance and intervention scenarios.

Brockmann & Helbing (Science 2013) showed that outbreak arrival times
are nearly linear in *effective distance*

    d_eff(m | n) = 1 - ln P(m | n)

where ``P(m | n)`` is the fraction of travellers leaving ``n`` that go
to ``m``; the effective distance between any two patches is the
shortest-path sum over the mobility graph.  This gives the reproduction
a closed-form arrival-time predictor to validate the SEIR machinery
against, and an analysis tool the paper's proposed forecasting
framework would ship with.

The module also provides intervention scenarios (travel restrictions)
expressed as transformed :class:`~repro.epidemic.network.MobilityNetwork`
instances.
"""

from __future__ import annotations

from typing import Iterable

import networkx as nx
import numpy as np

from repro.epidemic.network import MobilityNetwork


def transition_probabilities(network: MobilityNetwork) -> np.ndarray:
    """Row-normalised travel matrix ``P[i, j] = P(next trip i -> j)``.

    Rows with no outgoing travel stay all-zero.
    """
    rates = network.rates
    row_sums = rates.sum(axis=1, keepdims=True)
    return np.divide(rates, row_sums, out=np.zeros_like(rates), where=row_sums > 0)


def effective_distance_matrix(network: MobilityNetwork) -> np.ndarray:
    """All-pairs effective distance via shortest paths.

    ``D[i, j]`` is the effective distance *from* patch ``i`` *to* patch
    ``j``; unreachable pairs get ``inf``.  Edge lengths are
    ``1 - ln P(j | i)``, always >= 1, so Dijkstra applies.
    """
    probs = transition_probabilities(network)
    n = network.n_patches
    graph = nx.DiGraph()
    graph.add_nodes_from(range(n))
    rows, cols = np.nonzero(probs)
    for i, j in zip(rows, cols):
        graph.add_edge(int(i), int(j), weight=float(1.0 - np.log(probs[i, j])))
    matrix = np.full((n, n), np.inf)
    for source, lengths in nx.all_pairs_dijkstra_path_length(graph, weight="weight"):
        for target, length in lengths.items():
            matrix[source, target] = length
    np.fill_diagonal(matrix, 0.0)
    return matrix


def predicted_arrival_order(network: MobilityNetwork, seed_patch: int | str) -> np.ndarray:
    """Patch indices ordered by effective distance from the seed.

    The seed itself comes first.  This is the closed-form forecast the
    SEIR simulation should approximately reproduce (validated in the
    test suite and the A5 benchmark).
    """
    index = (
        network.names.index(seed_patch) if isinstance(seed_patch, str) else int(seed_patch)
    )
    distances = effective_distance_matrix(network)[index]
    return np.argsort(distances, kind="stable")


def restrict_travel(
    network: MobilityNetwork,
    patches: Iterable[int | str],
    factor: float,
) -> MobilityNetwork:
    """A copy of the network with travel to/from ``patches`` scaled down.

    ``factor = 0`` is a full quarantine of those patches; ``factor = 0.1``
    models a 90% travel reduction.  Both inbound and outbound rates are
    scaled; everything else is untouched.
    """
    if not (0.0 <= factor <= 1.0):
        raise ValueError(f"factor must be in [0, 1], got {factor}")
    indices = [
        network.names.index(p) if isinstance(p, str) else int(p) for p in patches
    ]
    if not indices:
        raise ValueError("no patches selected for restriction")
    rates = network.rates.copy()
    for index in indices:
        rates[index, :] *= factor
        rates[:, index] *= factor
    return MobilityNetwork(
        names=network.names, populations=network.populations.copy(), rates=rates
    )


def global_travel_scaling(network: MobilityNetwork, factor: float) -> MobilityNetwork:
    """A copy with *all* travel rates scaled by ``factor`` (>= 0).

    Used to study how outbreak arrival times stretch as countries shut
    down movement while local transmission continues.
    """
    if factor < 0:
        raise ValueError(f"factor must be non-negative, got {factor}")
    return MobilityNetwork(
        names=network.names,
        populations=network.populations.copy(),
        rates=network.rates * factor,
    )
