"""Intervention planning on the fitted mobility network.

What is a Twitter-fitted mobility model *for*?  Deciding where to act.
This module evaluates pre-outbreak vaccination allocations and compares
allocation strategies:

* ``by_population`` — doses proportional to patch population (the
  mobility-blind baseline);
* ``by_centrality`` — doses weighted by mobility centrality (total
  travel throughput), protecting the network's hubs;
* ``seed_ring`` — everything into the seed patch and its strongest
  neighbours (ring containment).

Vaccination moves individuals S → R before the outbreak; strategies are
scored by final attack rate and arrival delay under the deterministic
metapopulation model.

The second half of the module is the *composable* intervention layer
the scenario engine builds on: each intervention is a frozen dataclass
with a phase (network rewiring → immunisation → variant seeding) and a
pure ``apply`` that transforms an :class:`EpidemicSetting`.
:func:`apply_stack` canonicalises the declared order within each phase,
so permuting a stack is bitwise-irrelevant by construction; compositions
that are *not* well defined (the same intervention twice, stacked doses
past a patch's population, two variant imports into one city) raise
:class:`InterventionStackError` instead of silently picking a meaning.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields, replace
from typing import ClassVar, Mapping

import numpy as np

from repro.epidemic.effective import global_travel_scaling, restrict_travel
from repro.epidemic.network import MobilityNetwork
from repro.epidemic.seir import SEIRParams, SEIRResult, simulate_seir


def allocate_by_population(network: MobilityNetwork, total_doses: float) -> np.ndarray:
    """Doses proportional to patch population (capped at the population)."""
    if total_doses < 0:
        raise ValueError("doses must be non-negative")
    share = network.populations / network.populations.sum()
    return np.minimum(total_doses * share, network.populations)


def allocate_by_centrality(network: MobilityNetwork, total_doses: float) -> np.ndarray:
    """Doses proportional to mobility throughput (in + out person-trips).

    Hubs spread disease between regions; protecting them buys the rest
    of the network time even when their populations are modest.
    """
    if total_doses < 0:
        raise ValueError("doses must be non-negative")
    outgoing = network.rates.sum(axis=1) * network.populations
    incoming = network.rates.T @ network.populations
    throughput = outgoing + incoming
    if throughput.sum() == 0:
        return allocate_by_population(network, total_doses)
    share = throughput / throughput.sum()
    return np.minimum(total_doses * share, network.populations)


def allocate_seed_ring(
    network: MobilityNetwork, total_doses: float, seed_patch: int | str, ring_size: int = 3
) -> np.ndarray:
    """Doses into the seed patch and its strongest-coupled neighbours."""
    if total_doses < 0:
        raise ValueError("doses must be non-negative")
    if ring_size < 0:
        raise ValueError("ring_size must be non-negative")
    seed = (
        network.names.index(seed_patch) if isinstance(seed_patch, str) else int(seed_patch)
    )
    coupling = network.rates[seed] * network.populations[seed] + (
        network.rates[:, seed] * network.populations
    )
    coupling[seed] = np.inf  # the seed itself always belongs to the ring
    ring = np.argsort(coupling)[::-1][: ring_size + 1]
    doses = np.zeros(network.n_patches)
    ring_populations = network.populations[ring]
    share = ring_populations / ring_populations.sum()
    doses[ring] = np.minimum(total_doses * share, ring_populations)
    return doses


@dataclass(frozen=True)
class InterventionOutcome:
    """One strategy's epidemic outcome."""

    strategy: str
    doses: np.ndarray
    total_infected: float
    attack_rate: float
    mean_arrival_day: float


def evaluate_vaccination(
    network: MobilityNetwork,
    params: SEIRParams,
    seed_patch: int | str,
    doses_by_strategy: dict[str, np.ndarray],
    initial_cases: float = 10.0,
    t_max_days: float = 365.0,
    arrival_threshold: float = 10.0,
) -> list[InterventionOutcome]:
    """Simulate the outbreak under each allocation and score it.

    Vaccinated individuals start in R; the comparison list is sorted by
    total infections, best strategy first.  Include an all-zeros
    allocation to get the no-intervention baseline in the same table.
    """
    seed = (
        network.names.index(seed_patch) if isinstance(seed_patch, str) else int(seed_patch)
    )
    outcomes = []
    for strategy, doses in doses_by_strategy.items():
        doses = np.asarray(doses, dtype=np.float64)
        if doses.shape != (network.n_patches,):
            raise ValueError(f"{strategy}: doses must have one entry per patch")
        if np.any(doses < 0) or np.any(doses > network.populations):
            raise ValueError(f"{strategy}: doses outside [0, population]")
        # Immunised individuals are removed up front: shrink the
        # susceptible pool by simulating with reduced populations, then
        # add the vaccinated back as recovered for accounting.
        result = _simulate_with_immunity(
            network, params, seed, doses, initial_cases, t_max_days
        )
        arrivals = result.arrival_times(threshold=arrival_threshold)
        finite = np.isfinite(arrivals)
        finite[seed] = False
        total_infected = float(result.r[-1].sum() + result.i[-1].sum() + result.e[-1].sum())
        outcomes.append(
            InterventionOutcome(
                strategy=strategy,
                doses=doses,
                total_infected=total_infected,
                attack_rate=total_infected / float(network.populations.sum()),
                mean_arrival_day=(
                    float(arrivals[finite].mean()) if finite.any() else float("inf")
                ),
            )
        )
    return sorted(outcomes, key=lambda o: o.total_infected)


def simulate_with_immunity(
    network: MobilityNetwork,
    params: SEIRParams,
    initial_infected: Mapping[int | str, float],
    doses: np.ndarray,
    t_max_days: float = 365.0,
    dt_days: float = 0.25,
) -> SEIRResult:
    """Run SEIR with part of each patch immunised from day zero.

    Implemented by shrinking the effective susceptible population: the
    vaccinated neither catch nor transmit, so they can be removed from
    the mixing population entirely.  An all-zero ``doses`` array runs on
    the original network object, so a no-op immunisation is bitwise
    identical to no immunisation at all.
    """
    doses = np.asarray(doses, dtype=np.float64)
    if doses.shape != (network.n_patches,):
        raise ValueError("doses must have one entry per patch")
    if np.any(doses < 0) or np.any(doses > network.populations):
        raise ValueError("doses outside [0, population]")
    if np.any(doses != 0):
        network = MobilityNetwork(
            names=network.names,
            populations=np.maximum(network.populations - doses, 1.0),
            rates=network.rates.copy(),
        )
    return simulate_seir(
        network, params, dict(initial_infected), t_max_days=t_max_days, dt_days=dt_days
    )


def _simulate_with_immunity(
    network: MobilityNetwork,
    params: SEIRParams,
    seed: int,
    doses: np.ndarray,
    initial_cases: float,
    t_max_days: float,
):
    """Back-compat shim over :func:`simulate_with_immunity`."""
    return simulate_with_immunity(
        network, params, {seed: initial_cases}, doses, t_max_days=t_max_days
    )


#: Phase ordering for composable interventions.  Network rewiring runs
#: first (it changes who mixes with whom), immunisation second (doses
#: are allocated on the *post-restriction* network, matching how a
#: campaign would target the world it actually operates in), variant
#: seeding last (it only edits transmission parameters and seeds).
PHASE_NETWORK = 0
PHASE_IMMUNITY = 1
PHASE_SEEDING = 2


class InterventionError(ValueError):
    """A single intervention's parameters are invalid."""


class InterventionStackError(InterventionError):
    """A *combination* of interventions has no defined meaning."""


@dataclass(frozen=True)
class EpidemicSetting:
    """Everything an intervention can act on, as one immutable value.

    ``doses`` is ``None`` until an immunisation intervention allocates
    some — keeping the distinction lets the simulation step skip the
    immunity wrapper entirely, so a dose-free stack reproduces the
    un-intervened baseline bitwise.
    """

    network: MobilityNetwork
    params: SEIRParams
    distances_km: np.ndarray | None = None
    doses: np.ndarray | None = None
    extra_seeds: tuple[tuple[str, float], ...] = ()


@dataclass(frozen=True)
class Intervention:
    """Base class: a pure, declarative transform of an EpidemicSetting.

    Subclasses are frozen dataclasses whose fields fully determine the
    transform, so :meth:`spec` round-trips through JSON and
    :meth:`canonical_key` gives a stable total order for stacking.
    """

    kind: ClassVar[str] = ""
    phase: ClassVar[int] = PHASE_NETWORK

    def apply(self, setting: EpidemicSetting) -> EpidemicSetting:
        """The transformed setting (the input is never mutated)."""
        raise NotImplementedError

    def spec(self) -> dict:
        """JSON-able declarative form, ``{"kind": ..., <fields>}``."""
        payload: dict = {"kind": self.kind}
        for field in fields(self):
            value = getattr(self, field.name)
            payload[field.name] = list(value) if isinstance(value, tuple) else value
        return payload

    def canonical_key(self) -> str:
        """Deterministic sort key: interventions with equal keys are equal."""
        return json.dumps(self.spec(), sort_keys=True)


@dataclass(frozen=True)
class MobilityRestriction(Intervention):
    """Scale travel to/from named patches (``factor=0`` = quarantine)."""

    patches: tuple[str, ...]
    factor: float

    kind: ClassVar[str] = "mobility_restriction"
    phase: ClassVar[int] = PHASE_NETWORK

    def __post_init__(self) -> None:
        object.__setattr__(self, "patches", tuple(self.patches))
        if not self.patches:
            raise InterventionError("mobility_restriction: no patches selected")
        if not (0.0 <= self.factor <= 1.0):
            raise InterventionError(
                f"mobility_restriction: factor must be in [0, 1], got {self.factor}"
            )

    def apply(self, setting: EpidemicSetting) -> EpidemicSetting:
        return replace(
            setting, network=restrict_travel(setting.network, self.patches, self.factor)
        )


@dataclass(frozen=True)
class TravelScaling(Intervention):
    """Scale *all* travel rates by one factor (border-closure dial)."""

    factor: float

    kind: ClassVar[str] = "travel_scaling"
    phase: ClassVar[int] = PHASE_NETWORK

    def __post_init__(self) -> None:
        if self.factor < 0:
            raise InterventionError(
                f"travel_scaling: factor must be non-negative, got {self.factor}"
            )

    def apply(self, setting: EpidemicSetting) -> EpidemicSetting:
        return replace(
            setting, network=global_travel_scaling(setting.network, self.factor)
        )


@dataclass(frozen=True)
class ModeShift(Intervention):
    """Rescale long-haul vs short-haul travel differently.

    Models a modal substitution (flights suppressed, local trips up):
    rates on links longer than ``threshold_km`` are scaled by
    ``long_factor``, the rest by ``short_factor``.  Requires the setting
    to carry a centre-distance matrix.
    """

    threshold_km: float
    long_factor: float
    short_factor: float = 1.0

    kind: ClassVar[str] = "mode_shift"
    phase: ClassVar[int] = PHASE_NETWORK

    def __post_init__(self) -> None:
        if self.threshold_km <= 0:
            raise InterventionError(
                f"mode_shift: threshold_km must be positive, got {self.threshold_km}"
            )
        if self.long_factor < 0 or self.short_factor < 0:
            raise InterventionError("mode_shift: factors must be non-negative")

    def apply(self, setting: EpidemicSetting) -> EpidemicSetting:
        if setting.distances_km is None:
            raise InterventionError(
                "mode_shift requires a setting with a distance matrix"
            )
        factors = np.where(
            setting.distances_km > self.threshold_km, self.long_factor, self.short_factor
        )
        np.fill_diagonal(factors, 0.0)  # keep the zero diagonal exact
        network = MobilityNetwork(
            names=setting.network.names,
            populations=setting.network.populations.copy(),
            rates=setting.network.rates * factors,
        )
        return replace(setting, network=network)


@dataclass(frozen=True)
class Vaccination(Intervention):
    """Allocate doses pre-outbreak with one of the named strategies."""

    strategy: str
    dose_fraction: float
    seed_city: str | None = None
    ring_size: int = 3

    kind: ClassVar[str] = "vaccination"
    phase: ClassVar[int] = PHASE_IMMUNITY

    STRATEGIES: ClassVar[tuple[str, ...]] = ("by_population", "by_centrality", "seed_ring")

    def __post_init__(self) -> None:
        if self.strategy not in self.STRATEGIES:
            raise InterventionError(
                f"vaccination: unknown strategy {self.strategy!r}; "
                f"expected one of {', '.join(self.STRATEGIES)}"
            )
        if not (0.0 <= self.dose_fraction <= 1.0):
            raise InterventionError(
                f"vaccination: dose_fraction must be in [0, 1], got {self.dose_fraction}"
            )
        if self.strategy == "seed_ring" and self.seed_city is None:
            raise InterventionError("vaccination: seed_ring requires seed_city")

    def allocate(self, setting: EpidemicSetting) -> np.ndarray:
        """The dose vector this intervention adds, on the current network."""
        network = setting.network
        total_doses = self.dose_fraction * float(network.populations.sum())
        if self.strategy == "by_population":
            return allocate_by_population(network, total_doses)
        if self.strategy == "by_centrality":
            return allocate_by_centrality(network, total_doses)
        assert self.seed_city is not None
        return allocate_seed_ring(network, total_doses, self.seed_city, self.ring_size)

    def apply(self, setting: EpidemicSetting) -> EpidemicSetting:
        allocated = self.allocate(setting)
        doses = allocated if setting.doses is None else setting.doses + allocated
        over = doses > setting.network.populations
        if np.any(over):
            worst = setting.network.names[int(np.argmax(over))]
            raise InterventionStackError(
                "stacked vaccinations exceed the population of patch "
                f"{worst!r}; dosing past full immunisation is undefined"
            )
        return replace(setting, doses=doses)


@dataclass(frozen=True)
class VariantSeeding(Intervention):
    """Import a (possibly more transmissible) variant into one city.

    Scales beta by ``beta_multiplier`` and adds ``cases`` initial
    infections in ``city`` on top of the scenario's own seed.
    """

    city: str
    cases: float
    beta_multiplier: float = 1.0

    kind: ClassVar[str] = "variant_seeding"
    phase: ClassVar[int] = PHASE_SEEDING

    def __post_init__(self) -> None:
        if self.cases <= 0:
            raise InterventionError(
                f"variant_seeding: cases must be positive, got {self.cases}"
            )
        if self.beta_multiplier <= 0:
            raise InterventionError(
                f"variant_seeding: beta_multiplier must be positive, "
                f"got {self.beta_multiplier}"
            )

    def apply(self, setting: EpidemicSetting) -> EpidemicSetting:
        params = SEIRParams(
            beta=setting.params.beta * self.beta_multiplier,
            sigma=setting.params.sigma,
            gamma=setting.params.gamma,
        )
        return replace(
            setting,
            params=params,
            extra_seeds=setting.extra_seeds + ((self.city, float(self.cases)),),
        )


#: Registry of composable intervention kinds, for dict round-tripping.
INTERVENTION_KINDS: dict[str, type[Intervention]] = {
    cls.kind: cls
    for cls in (MobilityRestriction, TravelScaling, ModeShift, Vaccination, VariantSeeding)
}


def intervention_from_dict(payload: Mapping) -> Intervention:
    """Build an intervention from its declarative ``spec()`` form."""
    if not isinstance(payload, Mapping):
        raise InterventionError(f"intervention spec must be a mapping, got {payload!r}")
    data = dict(payload)
    kind = data.pop("kind", None)
    if kind not in INTERVENTION_KINDS:
        raise InterventionError(
            f"unknown intervention kind {kind!r}; "
            f"expected one of {', '.join(sorted(INTERVENTION_KINDS))}"
        )
    cls = INTERVENTION_KINDS[kind]
    if "patches" in data and isinstance(data["patches"], list):
        data["patches"] = tuple(data["patches"])
    try:
        return cls(**data)
    except TypeError as exc:
        raise InterventionError(f"{kind}: {exc}") from exc


def stack_order(interventions: tuple[Intervention, ...]) -> tuple[Intervention, ...]:
    """The canonical application order: by phase, then canonical key.

    Sorting makes declared order irrelevant *bitwise*: any permutation
    of the same stack applies in exactly the same sequence, so even
    non-associative float effects (summed dose vectors, chained rate
    scalings) come out identical.
    """
    return tuple(sorted(interventions, key=lambda i: (i.phase, i.canonical_key())))


def validate_stack(
    interventions: tuple[Intervention, ...],
) -> tuple[Intervention, ...]:
    """Canonical order with the *static* composition rules enforced.

    Raises :class:`InterventionStackError` for compositions with no
    defined meaning that are detectable without a network: the identical
    intervention listed twice, or two variant imports into the same
    city.  (The stacked-dose bound is checked at apply time, when patch
    populations are known.)
    """
    ordered = stack_order(tuple(interventions))
    keys = [i.canonical_key() for i in ordered]
    for first, second in zip(keys, keys[1:]):
        if first == second:
            raise InterventionStackError(
                f"intervention listed twice: {first}; "
                "stacking an intervention with itself is undefined"
            )
    seeded_cities = [i.city for i in ordered if isinstance(i, VariantSeeding)]
    duplicates = {c for c in seeded_cities if seeded_cities.count(c) > 1}
    if duplicates:
        raise InterventionStackError(
            "multiple variant seedings into "
            f"{', '.join(sorted(duplicates))}: seeding the same city twice is undefined"
        )
    return ordered


def apply_stack(
    setting: EpidemicSetting, interventions: tuple[Intervention, ...]
) -> EpidemicSetting:
    """Apply a whole intervention stack in canonical order.

    Raises :class:`InterventionStackError` for compositions with no
    defined meaning: the identical intervention listed twice, stacked
    doses exceeding a patch population, or two variant imports into the
    same city.
    """
    for intervention in validate_stack(tuple(interventions)):
        setting = intervention.apply(setting)
    return setting


def simulate_setting(
    setting: EpidemicSetting,
    initial_infected: Mapping[int | str, float],
    t_max_days: float = 365.0,
    dt_days: float = 0.25,
) -> SEIRResult:
    """Simulate an (already intervened) setting from the given seeds.

    The setting's ``extra_seeds`` merge into ``initial_infected``; doses
    (when present and non-zero) shrink the susceptible pool exactly as
    :func:`simulate_with_immunity` does.
    """
    seeds: dict[int | str, float] = dict(initial_infected)
    for city, cases in setting.extra_seeds:
        seeds[city] = seeds.get(city, 0.0) + cases
    if setting.doses is not None:
        return simulate_with_immunity(
            setting.network,
            setting.params,
            seeds,
            setting.doses,
            t_max_days=t_max_days,
            dt_days=dt_days,
        )
    return simulate_seir(
        setting.network, setting.params, seeds, t_max_days=t_max_days, dt_days=dt_days
    )


def render_outcomes(outcomes: list[InterventionOutcome]) -> str:
    """The strategy comparison as a table (best first)."""
    lines = [
        "Vaccination strategy comparison (best first):",
        f"  {'strategy':<18s}{'infected':>14s}{'attack rate':>13s}{'mean arrival':>14s}",
    ]
    for outcome in outcomes:
        arrival = (
            f"{outcome.mean_arrival_day:10.1f} d"
            if np.isfinite(outcome.mean_arrival_day)
            else "     never"
        )
        lines.append(
            f"  {outcome.strategy:<18s}{outcome.total_infected:>14,.0f}"
            f"{outcome.attack_rate:>12.1%}{arrival:>14s}"
        )
    return "\n".join(lines)
