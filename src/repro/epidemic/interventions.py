"""Intervention planning on the fitted mobility network.

What is a Twitter-fitted mobility model *for*?  Deciding where to act.
This module evaluates pre-outbreak vaccination allocations and compares
allocation strategies:

* ``by_population`` — doses proportional to patch population (the
  mobility-blind baseline);
* ``by_centrality`` — doses weighted by mobility centrality (total
  travel throughput), protecting the network's hubs;
* ``seed_ring`` — everything into the seed patch and its strongest
  neighbours (ring containment).

Vaccination moves individuals S → R before the outbreak; strategies are
scored by final attack rate and arrival delay under the deterministic
metapopulation model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.epidemic.network import MobilityNetwork
from repro.epidemic.seir import SEIRParams, simulate_seir


def allocate_by_population(network: MobilityNetwork, total_doses: float) -> np.ndarray:
    """Doses proportional to patch population (capped at the population)."""
    if total_doses < 0:
        raise ValueError("doses must be non-negative")
    share = network.populations / network.populations.sum()
    return np.minimum(total_doses * share, network.populations)


def allocate_by_centrality(network: MobilityNetwork, total_doses: float) -> np.ndarray:
    """Doses proportional to mobility throughput (in + out person-trips).

    Hubs spread disease between regions; protecting them buys the rest
    of the network time even when their populations are modest.
    """
    if total_doses < 0:
        raise ValueError("doses must be non-negative")
    outgoing = network.rates.sum(axis=1) * network.populations
    incoming = network.rates.T @ network.populations
    throughput = outgoing + incoming
    if throughput.sum() == 0:
        return allocate_by_population(network, total_doses)
    share = throughput / throughput.sum()
    return np.minimum(total_doses * share, network.populations)


def allocate_seed_ring(
    network: MobilityNetwork, total_doses: float, seed_patch: int | str, ring_size: int = 3
) -> np.ndarray:
    """Doses into the seed patch and its strongest-coupled neighbours."""
    if total_doses < 0:
        raise ValueError("doses must be non-negative")
    if ring_size < 0:
        raise ValueError("ring_size must be non-negative")
    seed = (
        network.names.index(seed_patch) if isinstance(seed_patch, str) else int(seed_patch)
    )
    coupling = network.rates[seed] * network.populations[seed] + (
        network.rates[:, seed] * network.populations
    )
    coupling[seed] = np.inf  # the seed itself always belongs to the ring
    ring = np.argsort(coupling)[::-1][: ring_size + 1]
    doses = np.zeros(network.n_patches)
    ring_populations = network.populations[ring]
    share = ring_populations / ring_populations.sum()
    doses[ring] = np.minimum(total_doses * share, ring_populations)
    return doses


@dataclass(frozen=True)
class InterventionOutcome:
    """One strategy's epidemic outcome."""

    strategy: str
    doses: np.ndarray
    total_infected: float
    attack_rate: float
    mean_arrival_day: float


def evaluate_vaccination(
    network: MobilityNetwork,
    params: SEIRParams,
    seed_patch: int | str,
    doses_by_strategy: dict[str, np.ndarray],
    initial_cases: float = 10.0,
    t_max_days: float = 365.0,
    arrival_threshold: float = 10.0,
) -> list[InterventionOutcome]:
    """Simulate the outbreak under each allocation and score it.

    Vaccinated individuals start in R; the comparison list is sorted by
    total infections, best strategy first.  Include an all-zeros
    allocation to get the no-intervention baseline in the same table.
    """
    seed = (
        network.names.index(seed_patch) if isinstance(seed_patch, str) else int(seed_patch)
    )
    outcomes = []
    for strategy, doses in doses_by_strategy.items():
        doses = np.asarray(doses, dtype=np.float64)
        if doses.shape != (network.n_patches,):
            raise ValueError(f"{strategy}: doses must have one entry per patch")
        if np.any(doses < 0) or np.any(doses > network.populations):
            raise ValueError(f"{strategy}: doses outside [0, population]")
        # Immunised individuals are removed up front: shrink the
        # susceptible pool by simulating with reduced populations, then
        # add the vaccinated back as recovered for accounting.
        result = _simulate_with_immunity(
            network, params, seed, doses, initial_cases, t_max_days
        )
        arrivals = result.arrival_times(threshold=arrival_threshold)
        finite = np.isfinite(arrivals)
        finite[seed] = False
        total_infected = float(result.r[-1].sum() + result.i[-1].sum() + result.e[-1].sum())
        outcomes.append(
            InterventionOutcome(
                strategy=strategy,
                doses=doses,
                total_infected=total_infected,
                attack_rate=total_infected / float(network.populations.sum()),
                mean_arrival_day=(
                    float(arrivals[finite].mean()) if finite.any() else float("inf")
                ),
            )
        )
    return sorted(outcomes, key=lambda o: o.total_infected)


def _simulate_with_immunity(
    network: MobilityNetwork,
    params: SEIRParams,
    seed: int,
    doses: np.ndarray,
    initial_cases: float,
    t_max_days: float,
):
    """Run SEIR with part of each patch immunised from day zero.

    Implemented by shrinking the effective susceptible population: the
    vaccinated neither catch nor transmit, so they can be removed from
    the mixing population entirely.
    """
    effective = MobilityNetwork(
        names=network.names,
        populations=np.maximum(network.populations - doses, 1.0),
        rates=network.rates.copy(),
    )
    return simulate_seir(
        effective, params, {seed: initial_cases}, t_max_days=t_max_days
    )


def render_outcomes(outcomes: list[InterventionOutcome]) -> str:
    """The strategy comparison as a table (best first)."""
    lines = [
        "Vaccination strategy comparison (best first):",
        f"  {'strategy':<18s}{'infected':>14s}{'attack rate':>13s}{'mean arrival':>14s}",
    ]
    for outcome in outcomes:
        arrival = (
            f"{outcome.mean_arrival_day:10.1f} d"
            if np.isfinite(outcome.mean_arrival_day)
            else "     never"
        )
        lines.append(
            f"  {outcome.strategy:<18s}{outcome.total_infected:>14,.0f}"
            f"{outcome.attack_rate:>12.1%}{arrival:>14s}"
        )
    return "\n".join(lines)
