"""Stochastic outbreak simulation and arrival-time analysis.

Complements the deterministic SEIR integrator with a discrete-time
chain-binomial SIR: infections and recoveries are binomial draws, and
infectious *travellers* are Poisson draws over the network rates.  The
key output for the paper's motivating use case is the *arrival time* of
an outbreak in each city — the quantity a responsive, Twitter-informed
model would forecast during an emergency.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.epidemic.network import MobilityNetwork


@dataclass(frozen=True)
class StochasticResult:
    """One stochastic run: daily S/I/R plus per-patch arrival days."""

    times: np.ndarray
    s: np.ndarray
    i: np.ndarray
    r: np.ndarray
    arrival_day: np.ndarray
    network: MobilityNetwork

    @property
    def total_infected(self) -> float:
        """Total individuals ever infected across all patches."""
        return float(self.r[-1].sum() + self.i[-1].sum())

    @property
    def died_out_early(self) -> bool:
        """Whether the outbreak fizzled before leaving the seed patch."""
        return int(np.isfinite(self.arrival_day).sum()) <= 1


def simulate_stochastic_sir(
    network: MobilityNetwork,
    beta: float,
    gamma: float,
    initial_infected: dict[int, int] | dict[str, int],
    t_max_days: int = 365,
    rng: np.random.Generator | None = None,
) -> StochasticResult:
    """Daily chain-binomial SIR with Poisson infectious travel.

    Per day and patch: each susceptible is infected with probability
    ``1 - exp(-beta * I/N)``; each infectious recovers with probability
    ``1 - exp(-gamma)``; infectious individuals seed patch ``j`` with
    ``Poisson(rates[i, j] * I_i)`` imported cases (bounded by the
    destination's susceptibles).
    """
    if beta < 0 or gamma <= 0:
        raise ValueError("beta must be >= 0 and gamma > 0")
    if t_max_days < 1:
        raise ValueError("horizon must be at least one day")
    rng = rng if rng is not None else np.random.default_rng(0)
    n = network.n_patches
    populations = network.populations.astype(np.int64)
    i_now = np.zeros(n, dtype=np.int64)
    for key, count in initial_infected.items():
        index = network.names.index(key) if isinstance(key, str) else int(key)
        i_now[index] = int(count)
    if np.any(i_now > populations):
        raise ValueError("cannot seed more infections than population")
    s_now = populations - i_now
    r_now = np.zeros(n, dtype=np.int64)

    s_hist = np.empty((t_max_days + 1, n), dtype=np.int64)
    i_hist = np.empty((t_max_days + 1, n), dtype=np.int64)
    r_hist = np.empty((t_max_days + 1, n), dtype=np.int64)
    s_hist[0], i_hist[0], r_hist[0] = s_now, i_now, r_now
    arrival = np.full(n, np.inf)
    arrival[i_now > 0] = 0.0

    for day in range(1, t_max_days + 1):
        # Imported infections: infectious travellers from every patch.
        expected_imports = network.rates.T @ i_now
        imports = rng.poisson(expected_imports)
        imports = np.minimum(imports, s_now)
        s_now = s_now - imports
        i_now = i_now + imports
        # Local transmission and recovery.
        prevalence = np.divide(
            i_now, populations, out=np.zeros(n, dtype=np.float64), where=populations > 0
        )
        p_infect = -np.expm1(-beta * prevalence)
        new_cases = rng.binomial(s_now, p_infect)
        recoveries = rng.binomial(i_now, -np.expm1(-gamma))
        s_now = s_now - new_cases
        i_now = i_now + new_cases - recoveries
        r_now = r_now + recoveries
        s_hist[day], i_hist[day], r_hist[day] = s_now, i_now, r_now
        newly_arrived = (arrival == np.inf) & (i_now > 0)
        arrival[newly_arrived] = float(day)
        if i_now.sum() == 0:
            # Outbreak over; freeze the remaining history.
            s_hist[day:] = s_now
            i_hist[day:] = 0
            r_hist[day:] = r_now
            break

    return StochasticResult(
        times=np.arange(t_max_days + 1, dtype=np.float64),
        s=s_hist,
        i=i_hist,
        r=r_hist,
        arrival_day=arrival,
        network=network,
    )


@dataclass(frozen=True)
class OutbreakSummary:
    """Arrival-time statistics across stochastic runs."""

    names: tuple[str, ...]
    mean_arrival_day: np.ndarray
    arrival_probability: np.ndarray
    n_runs: int

    def render(self) -> str:
        """Patches ordered by mean arrival time."""
        order = np.argsort(self.mean_arrival_day)
        lines = [f"Outbreak arrival times over {self.n_runs} runs:"]
        for index in order:
            mean = self.mean_arrival_day[index]
            mean_text = f"{mean:7.1f}d" if np.isfinite(mean) else "   neverd"
            lines.append(
                f"  {self.names[index]:<22s} {mean_text}  "
                f"P(reached)={self.arrival_probability[index]:.2f}"
            )
        return "\n".join(lines)


def arrival_times(
    network: MobilityNetwork,
    beta: float,
    gamma: float,
    seed_patch: int | str,
    n_runs: int = 20,
    initial_cases: int = 10,
    t_max_days: int = 365,
    rng: np.random.Generator | None = None,
) -> OutbreakSummary:
    """Mean arrival day per patch over repeated stochastic outbreaks.

    Runs where a patch is never reached are excluded from its mean but
    reflected in ``arrival_probability``.
    """
    if n_runs < 1:
        raise ValueError("need at least one run")
    rng = rng if rng is not None else np.random.default_rng(0)
    n = network.n_patches
    sums = np.zeros(n)
    hits = np.zeros(n, dtype=np.int64)
    for _run in range(n_runs):
        result = simulate_stochastic_sir(
            network,
            beta,
            gamma,
            {seed_patch: initial_cases},
            t_max_days=t_max_days,
            rng=rng,
        )
        reached = np.isfinite(result.arrival_day)
        sums[reached] += result.arrival_day[reached]
        hits += reached
    means = np.divide(sums, hits, out=np.full(n, np.inf), where=hits > 0)
    return OutbreakSummary(
        names=network.names,
        mean_arrival_day=means,
        arrival_probability=hits / n_runs,
        n_runs=n_runs,
    )
