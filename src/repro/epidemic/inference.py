"""Epidemic parameter inference from incidence curves.

The responsive-forecasting loop needs one more piece: given the early
case counts observed in the seed city, estimate the transmission
parameters, then forecast spread over the Twitter-fitted mobility
network.  This module provides:

* :func:`estimate_growth_rate` — log-linear fit of the early exponential
  phase;
* :func:`r0_from_growth_rate` — the SIR relation ``R0 = 1 + r/gamma``;
* :func:`fit_sir_curve` — full (beta, gamma) least squares against a
  prevalence curve using the deterministic integrator.

Recovery of known parameters from simulated outbreaks is property-tested.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize


def estimate_growth_rate(
    times_days: np.ndarray, infected: np.ndarray, min_cases: float = 5.0
) -> float:
    """Exponential growth rate (per day) of the early epidemic phase.

    Fits ``ln I(t)`` linearly over the window from the first time
    ``I >= min_cases`` until prevalence reaches a quarter of its peak —
    the textbook definition of "early".  Raises if the window holds
    fewer than three points.
    """
    times = np.asarray(times_days, dtype=np.float64)
    cases = np.asarray(infected, dtype=np.float64)
    if times.shape != cases.shape:
        raise ValueError("times/infected must align")
    peak = cases.max()
    if peak < min_cases:
        raise ValueError("epidemic never reached the minimum case count")
    start_candidates = np.nonzero(cases >= min_cases)[0]
    start = start_candidates[0]
    stop_candidates = np.nonzero(cases >= peak / 4.0)[0]
    stop = stop_candidates[0]
    if stop - start < 3:
        # Extremely fast take-off; widen to the peak itself.
        stop = int(np.argmax(cases))
    window = slice(start, max(stop, start + 3))
    t = times[window]
    y = cases[window]
    positive = y > 0
    if positive.sum() < 3:
        raise ValueError("not enough early-phase points to fit a growth rate")
    slope, _intercept = np.polyfit(t[positive], np.log(y[positive]), deg=1)
    return float(slope)


def r0_from_growth_rate(growth_rate: float, gamma: float) -> float:
    """SIR relation ``R0 = 1 + r / gamma`` for exponential growth ``r``."""
    if gamma <= 0:
        raise ValueError("gamma must be positive")
    return 1.0 + growth_rate / gamma


@dataclass(frozen=True, slots=True)
class SirFit:
    """Fitted SIR transmission parameters."""

    beta: float
    gamma: float
    sse: float

    @property
    def r0(self) -> float:
        """The fitted basic reproduction number."""
        return self.beta / self.gamma


def fit_sir_curve(
    times_days: np.ndarray,
    infected: np.ndarray,
    population: float,
    initial_infected: float,
    beta_bounds: tuple[float, float] = (0.05, 3.0),
    gamma_bounds: tuple[float, float] = (0.02, 1.0),
) -> SirFit:
    """Least-squares (beta, gamma) against a single-patch prevalence curve.

    Integrates a one-patch SIR (via the metapopulation integrator with a
    single isolated patch) for candidate parameters and minimises the
    squared prevalence error with Nelder–Mead in log-parameter space.
    """
    times = np.asarray(times_days, dtype=np.float64)
    cases = np.asarray(infected, dtype=np.float64)
    if times.shape != cases.shape or times.size < 5:
        raise ValueError("need >= 5 aligned (time, infected) points")
    if population <= 0 or initial_infected <= 0:
        raise ValueError("population and initial_infected must be positive")
    horizon = float(times.max())
    # RK4 is 4th order; ~800 steps over the horizon is ample for SIR.
    dt = max(horizon / 800.0, 0.05)

    def objective(log_params: np.ndarray) -> float:
        beta, gamma = np.exp(log_params)
        if not (beta_bounds[0] <= beta <= beta_bounds[1]):
            return 1e18
        if not (gamma_bounds[0] <= gamma <= gamma_bounds[1]):
            return 1e18
        model_times, model_infected = _integrate_sir_scalar(
            float(beta), float(gamma), float(population), float(initial_infected),
            horizon, dt,
        )
        model = np.interp(times, model_times, model_infected)
        return float(((model - cases) ** 2).sum())

    start = np.log([0.4, 0.2])
    result = optimize.minimize(objective, start, method="Nelder-Mead")
    beta, gamma = np.exp(result.x)
    return SirFit(beta=float(beta), gamma=float(gamma), sse=float(result.fun))


def _integrate_sir_scalar(
    beta: float, gamma: float, population: float, i0: float, horizon: float, dt: float
) -> tuple[np.ndarray, np.ndarray]:
    """Fast scalar RK4 for one-patch SIR (the fitter's inner loop).

    Agrees with :func:`repro.epidemic.seir.simulate_seir` on a single
    isolated patch (tested) but avoids per-step array overhead, which
    dominates when Nelder–Mead calls it hundreds of times.
    """
    n_steps = int(np.ceil(horizon / dt))
    times = np.empty(n_steps + 1)
    infected = np.empty(n_steps + 1)
    s = population - i0
    i = i0
    times[0] = 0.0
    infected[0] = i

    def ds_di(s_c: float, i_c: float) -> tuple[float, float]:
        new = beta * s_c * i_c / population
        return -new, new - gamma * i_c

    for step in range(1, n_steps + 1):
        k1s, k1i = ds_di(s, i)
        k2s, k2i = ds_di(s + 0.5 * dt * k1s, i + 0.5 * dt * k1i)
        k3s, k3i = ds_di(s + 0.5 * dt * k2s, i + 0.5 * dt * k2i)
        k4s, k4i = ds_di(s + dt * k3s, i + dt * k3i)
        s += dt / 6.0 * (k1s + 2 * k2s + 2 * k3s + k4s)
        i += dt / 6.0 * (k1i + 2 * k2i + 2 * k3i + k4i)
        s = max(s, 0.0)
        i = max(i, 0.0)
        times[step] = step * dt
        infected[step] = i
    return times, infected
