"""Metapopulation epidemic modelling on fitted mobility networks.

The paper's introduction motivates the whole study with disease-spread
prediction, and its conclusion promises "a framework for the prediction
of disease spread" built on the fitted mobility models.  This subpackage
implements that framework:

``network``
    Build a patch-coupling mobility network from observed OD flows or
    from any fitted mobility model.
``seir``
    Deterministic metapopulation SEIR/SIR dynamics (RK4 integration)
    with per-capita travel coupling.
``simulation``
    Stochastic chain-binomial simulation, outbreak seeding, arrival-time
    measurement and multi-run summaries.
"""

from repro.epidemic.effective import (
    effective_distance_matrix,
    global_travel_scaling,
    predicted_arrival_order,
    restrict_travel,
    transition_probabilities,
)
from repro.epidemic.inference import (
    SirFit,
    estimate_growth_rate,
    fit_sir_curve,
    r0_from_growth_rate,
)
from repro.epidemic.interventions import (
    EpidemicSetting,
    Intervention,
    InterventionError,
    InterventionStackError,
    MobilityRestriction,
    ModeShift,
    TravelScaling,
    Vaccination,
    VariantSeeding,
    allocate_by_centrality,
    allocate_by_population,
    allocate_seed_ring,
    apply_stack,
    evaluate_vaccination,
    intervention_from_dict,
    simulate_setting,
    simulate_with_immunity,
    stack_order,
    validate_stack,
)
from repro.epidemic.network import MobilityNetwork, network_from_flows, network_from_model
from repro.epidemic.seir import SEIRParams, SEIRResult, simulate_seir
from repro.epidemic.simulation import (
    OutbreakSummary,
    StochasticResult,
    arrival_times,
    simulate_stochastic_sir,
)

__all__ = [
    "EpidemicSetting",
    "Intervention",
    "InterventionError",
    "InterventionStackError",
    "MobilityNetwork",
    "MobilityRestriction",
    "ModeShift",
    "OutbreakSummary",
    "SEIRParams",
    "SEIRResult",
    "SirFit",
    "StochasticResult",
    "TravelScaling",
    "Vaccination",
    "VariantSeeding",
    "allocate_by_centrality",
    "allocate_by_population",
    "allocate_seed_ring",
    "apply_stack",
    "arrival_times",
    "evaluate_vaccination",
    "intervention_from_dict",
    "simulate_setting",
    "simulate_with_immunity",
    "stack_order",
    "validate_stack",
    "effective_distance_matrix",
    "estimate_growth_rate",
    "fit_sir_curve",
    "r0_from_growth_rate",
    "global_travel_scaling",
    "network_from_flows",
    "network_from_model",
    "predicted_arrival_order",
    "restrict_travel",
    "simulate_seir",
    "simulate_stochastic_sir",
    "transition_probabilities",
]
