"""Deterministic metapopulation SEIR dynamics.

Standard force-of-infection metapopulation model (Balcan et al. 2009,
the paper's reference [1]): within each patch the disease follows SEIR
compartments; between patches, infection pressure mixes through the
per-capita travel rates of a :class:`~repro.epidemic.network.MobilityNetwork`.

For patch ``i`` with population ``N_i``::

    lambda_i = beta * (I_i + sum_j (w_ji I_j - w_ij I_i) ) / N_i   (effective)

implemented as an explicit commuting approximation: the effective
infectious density seen by patch ``i`` blends its own prevalence with
its neighbours', weighted by travel rates.  Integration is fixed-step
RK4 (deterministic, dependency-free, testable).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.epidemic.network import MobilityNetwork


@dataclass(frozen=True, slots=True)
class SEIRParams:
    """Epidemiological rates (per day).

    ``sigma`` (incubation rate) of ``inf`` collapses E instantly,
    turning the model into plain SIR.
    """

    beta: float = 0.5
    sigma: float = 0.25
    gamma: float = 0.2

    def __post_init__(self) -> None:
        if self.beta < 0 or self.gamma <= 0:
            raise ValueError("beta must be >= 0 and gamma > 0")
        if self.sigma <= 0:
            raise ValueError("sigma must be positive (use math.inf for SIR)")

    @property
    def r0(self) -> float:
        """Basic reproduction number beta / gamma."""
        return self.beta / self.gamma


@dataclass(frozen=True)
class SEIRResult:
    """Trajectories of all compartments.

    Arrays are shaped ``(n_steps + 1, n_patches)``; ``times`` is in days.
    """

    times: np.ndarray
    s: np.ndarray
    e: np.ndarray
    i: np.ndarray
    r: np.ndarray
    network: MobilityNetwork

    @property
    def attack_rate(self) -> np.ndarray:
        """Final fraction of each patch ever infected."""
        populations = self.network.populations
        return (self.r[-1] + self.i[-1] + self.e[-1]) / populations

    def peak_times(self) -> np.ndarray:
        """Day of peak infectious prevalence per patch."""
        return self.times[np.argmax(self.i, axis=0)]

    def arrival_times(self, threshold: float = 1.0) -> np.ndarray:
        """First day each patch's infectious count reaches ``threshold``.

        Patches never reaching it get ``inf``.
        """
        out = np.full(self.network.n_patches, np.inf)
        for patch in range(self.network.n_patches):
            hits = np.nonzero(self.i[:, patch] >= threshold)[0]
            if hits.size:
                out[patch] = self.times[hits[0]]
        return out


def _effective_prevalence(
    i: np.ndarray, populations: np.ndarray, rates: np.ndarray
) -> np.ndarray:
    """Infectious density each patch is exposed to, after travel mixing.

    A fraction ``tau_i = sum_j rates[i, j]`` of patch i's person-time is
    spent travelling, split across destinations; symmetric inbound terms
    import neighbours' prevalence.  Rates are interpreted as the
    fraction of time spent in each destination (capped so the row sum
    cannot exceed 1).
    """
    out_fraction = rates.sum(axis=1)
    cap = np.minimum(out_fraction, 0.95)
    scale = np.divide(cap, out_fraction, out=np.zeros_like(cap), where=out_fraction > 0)
    w = rates * scale[:, None]
    stay = 1.0 - w.sum(axis=1)
    # Effective prevalence in patch k's "airspace": residents staying
    # plus visitors, over the effective mixing population.
    visitors_i = w.T @ i
    visitors_n = w.T @ populations
    local_density = (stay * i + visitors_i) / (stay * populations + visitors_n)
    # Residents experience their home density while staying and the
    # destination densities while away.
    return stay * local_density + w @ local_density


def simulate_seir(
    network: MobilityNetwork,
    params: SEIRParams,
    initial_infected: dict[int, float] | dict[str, float],
    t_max_days: float = 365.0,
    dt_days: float = 0.25,
) -> SEIRResult:
    """Integrate metapopulation SEIR with RK4.

    ``initial_infected`` maps patch index (or patch name) to the number
    of initially infectious individuals; everyone else starts
    susceptible.
    """
    if t_max_days <= 0 or dt_days <= 0:
        raise ValueError("need positive horizon and step")
    n = network.n_patches
    populations = network.populations.astype(np.float64)
    i0 = np.zeros(n)
    for key, count in initial_infected.items():
        index = network.names.index(key) if isinstance(key, str) else int(key)
        if count < 0:
            raise ValueError("initial infections must be non-negative")
        i0[index] = float(count)
    if np.any(i0 > populations):
        raise ValueError("cannot seed more infections than population")

    n_steps = int(np.ceil(t_max_days / dt_days))
    times = np.linspace(0.0, n_steps * dt_days, n_steps + 1)
    s = np.empty((n_steps + 1, n))
    e = np.empty((n_steps + 1, n))
    i = np.empty((n_steps + 1, n))
    r = np.empty((n_steps + 1, n))
    s[0] = populations - i0
    e[0] = 0.0
    i[0] = i0
    r[0] = 0.0

    beta, sigma, gamma = params.beta, params.sigma, params.gamma
    rates = network.rates
    sir_mode = np.isinf(sigma)

    def derivatives(state: np.ndarray) -> np.ndarray:
        s_c, e_c, i_c = state[0], state[1], state[2]
        lam = beta * _effective_prevalence(i_c, populations, rates)
        new_infections = lam * s_c
        if sir_mode:
            ds = -new_infections
            de = np.zeros_like(e_c)
            di = new_infections - gamma * i_c
        else:
            ds = -new_infections
            de = new_infections - sigma * e_c
            di = sigma * e_c - gamma * i_c
        dr = gamma * i_c
        return np.stack([ds, de, di, dr])

    state = np.stack([s[0], e[0], i[0], r[0]])
    for step in range(1, n_steps + 1):
        k1 = derivatives(state)
        k2 = derivatives(state + 0.5 * dt_days * k1)
        k3 = derivatives(state + 0.5 * dt_days * k2)
        k4 = derivatives(state + dt_days * k3)
        state = state + (dt_days / 6.0) * (k1 + 2 * k2 + 2 * k3 + k4)
        np.clip(state, 0.0, None, out=state)
        s[step], e[step], i[step], r[step] = state

    return SEIRResult(times=times, s=s, e=e, i=i, r=r, network=network)
