"""Mobility networks for metapopulation epidemic models.

A :class:`MobilityNetwork` is a set of patches (the study areas) with
populations and a matrix of per-capita daily travel rates.  Rates can
come from observed Twitter OD flows (scaled from "transitions per
collection period" to "trips per person per day") or from any fitted
mobility model — which is exactly the paper's proposal: fit the model on
Twitter flows, then plug census populations in to predict real mobility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import networkx as nx
import numpy as np

from repro.core.world import World
from repro.data.gazetteer import Area
from repro.extraction.mobility import ODFlows, ODPairs
from repro.geo.distance import pairwise_distance_matrix
from repro.models.base import FittedMobilityModel


@dataclass(frozen=True)
class MobilityNetwork:
    """Patches plus a per-capita daily travel-rate matrix.

    ``rates[i, j]`` is the expected number of trips an individual of
    patch ``i`` makes to patch ``j`` per day; the diagonal is zero.
    """

    names: tuple[str, ...]
    populations: np.ndarray
    rates: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.names)
        if self.populations.shape != (n,):
            raise ValueError("populations must have one entry per patch")
        if self.rates.shape != (n, n):
            raise ValueError("rates must be a square per-patch matrix")
        if np.any(self.populations <= 0):
            raise ValueError("patch populations must be positive")
        if np.any(self.rates < 0):
            raise ValueError("travel rates must be non-negative")
        if np.any(np.diag(self.rates) != 0):
            raise ValueError("diagonal travel rates must be zero")

    @property
    def n_patches(self) -> int:
        """Number of patches."""
        return len(self.names)

    def to_networkx(self) -> nx.DiGraph:
        """The network as a weighted directed graph (rate = edge weight)."""
        graph = nx.DiGraph()
        for i, name in enumerate(self.names):
            graph.add_node(name, population=float(self.populations[i]))
        rows, cols = np.nonzero(self.rates)
        for i, j in zip(rows, cols):
            graph.add_edge(self.names[i], self.names[j], rate=float(self.rates[i, j]))
        return graph

    def strongly_connected(self) -> bool:
        """Whether every patch can (indirectly) seed every other patch."""
        return nx.is_strongly_connected(self.to_networkx())


def _rates_from_trip_matrix(
    trip_matrix: np.ndarray, populations: np.ndarray, trips_per_person_per_day: float
) -> np.ndarray:
    """Convert a relative trip-volume matrix to per-capita daily rates.

    The matrix's row sums are normalised so the population-weighted mean
    out-travel rate equals ``trips_per_person_per_day`` — i.e. the OD
    matrix supplies the *structure* and the calibration constant supplies
    the *volume*, since Twitter transition counts are not trips/day.
    """
    trip_matrix = np.asarray(trip_matrix, dtype=np.float64)
    total_trips = trip_matrix.sum()
    if total_trips <= 0:
        raise ValueError("trip matrix has no flow to calibrate")
    total_population = populations.sum()
    scale = trips_per_person_per_day * total_population / total_trips
    return scale * trip_matrix / populations[:, None]


def network_from_flows(
    flows: ODFlows, trips_per_person_per_day: float = 0.05
) -> MobilityNetwork:
    """Build a network directly from observed Twitter OD flows."""
    populations = flows.populations()
    matrix = flows.matrix.astype(np.float64).copy()
    np.fill_diagonal(matrix, 0.0)
    return MobilityNetwork(
        names=tuple(a.name for a in flows.areas),
        populations=populations,
        rates=_rates_from_trip_matrix(matrix, populations, trips_per_person_per_day),
    )


def network_from_model(
    fitted: FittedMobilityModel,
    areas: Sequence[Area] | World,
    trips_per_person_per_day: float = 0.05,
) -> MobilityNetwork:
    """Build a network from a fitted model over census populations.

    This is the paper's Section IV proposal made concrete: replace the
    Twitter-extracted flows with the model's estimates (computed from
    census m, n and the real distances) and couple patches with those.

    Passing a :class:`~repro.core.world.World` reuses its cached centre
    distance matrix; a bare area sequence recomputes the distances.
    """
    if isinstance(areas, World):
        names = areas.names
        populations = areas.populations
        distances = areas.distance_matrix_km
    else:
        names = tuple(a.name for a in areas)
        populations = np.array([a.population for a in areas], dtype=np.float64)
        distances = pairwise_distance_matrix([a.center for a in areas])
    n = len(names)
    source, dest = np.nonzero(~np.eye(n, dtype=bool))
    pairs = ODPairs(
        source=source,
        dest=dest,
        m=populations[source],
        n=populations[dest],
        d_km=distances[source, dest],
        flow=np.zeros(source.size),
    )
    estimates = np.asarray(fitted.predict(pairs), dtype=np.float64)
    matrix = np.zeros((n, n), dtype=np.float64)
    matrix[source, dest] = np.maximum(estimates, 0.0)
    return MobilityNetwork(
        names=names,
        populations=populations,
        rates=_rates_from_trip_matrix(matrix, populations, trips_per_person_per_day),
    )
