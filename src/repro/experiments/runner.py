"""Run every paper artefact on one corpus."""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.corpus import TweetCorpus
from repro.experiments.fig1 import Fig1Result, run_fig1
from repro.experiments.fig2 import Fig2Result, run_fig2
from repro.experiments.fig3 import Fig3Result, run_fig3
from repro.experiments.fig4 import Fig4Result, run_fig4
from repro.experiments.scales import ExperimentContext
from repro.experiments.table1 import Table1Result, run_table1
from repro.experiments.table2 import Table2Result, table2_from_fig4


@dataclass(frozen=True)
class ExperimentSuiteResult:
    """All six paper artefacts measured on one corpus."""

    table1: Table1Result
    fig1: Fig1Result
    fig2: Fig2Result
    fig3: Fig3Result
    fig4: Fig4Result
    table2: Table2Result

    def render(self) -> str:
        """Every artefact's text rendering, in paper order."""
        sections = [
            self.table1.render(),
            self.fig1.render(),
            self.fig2.render(),
            self.fig3.render(),
            self.fig4.render(),
            self.table2.render(),
        ]
        rule = "\n" + "=" * 78 + "\n"
        return rule.join(sections)


def run_all_experiments(
    corpus: TweetCorpus, gazetteer: str | None = None
) -> ExperimentSuiteResult:
    """Run Table I, Figs 1–4 and Table II on a corpus, sharing extraction.

    The Fig 4 fits are reused by Table II, so the full suite costs one
    spatial index build, one labelling pass per scale and one model fit
    per (scale, model).  ``gazetteer`` selects the measuring area system
    (``None``/``"legacy"`` for the paper's 60 areas).  This always
    executes every artefact in-process; for the cached, process-parallel
    variant use :func:`repro.pipeline.run_all_experiments_cached`.
    """
    context = ExperimentContext(corpus, gazetteer=gazetteer)
    fig4 = run_fig4(context)
    table2 = table2_from_fig4(fig4)
    return ExperimentSuiteResult(
        table1=run_table1(corpus),
        fig1=run_fig1(corpus),
        fig2=run_fig2(corpus),
        fig3=run_fig3(context),
        fig4=fig4,
        table2=table2,
    )
