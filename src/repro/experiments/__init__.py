"""Paper-artefact reproductions: one module per table/figure.

Every experiment takes an :class:`~repro.experiments.scales.ExperimentContext`
(a corpus plus cached spatial index / labels / flows) and returns a
structured ``*Result`` object with a ``render()`` method producing the
text the benchmark harness prints.

* ``table1`` — dataset statistics (Table I)
* ``fig1``   — tweet density map (Fig 1)
* ``fig2``   — heavy-tailed tweeting dynamics (Fig 2)
* ``fig3``   — Twitter population vs census at three scales (Fig 3a/3b)
* ``fig4``   — model estimation scatter at three scales (Fig 4)
* ``table2`` — model scores: Pearson upper, HitRate@50% lower (Table II)
* ``runner`` — run everything on one corpus
"""

from repro.experiments.distance import DistanceAnalysisResult, run_distance_analysis
from repro.experiments.epidemic_forecast import ForecastResult, run_forecast_experiment
from repro.experiments.fig1 import Fig1Result, run_fig1
from repro.experiments.fig2 import Fig2Result, run_fig2
from repro.experiments.fig3 import Fig3Result, run_fig3
from repro.experiments.fig4 import Fig4Result, run_fig4
from repro.experiments.ground_truth import (
    GroundTruthResult,
    run_ground_truth_validation,
    true_area_flows,
)
from repro.experiments.report import generate_report, reproduction_checklist
from repro.experiments.runner import ExperimentSuiteResult, run_all_experiments
from repro.experiments.scales import ExperimentContext, ScaleSpec, default_scale_specs
from repro.experiments.table1 import Table1Result, run_table1
from repro.experiments.table2 import Table2Result, run_table2

__all__ = [
    "DistanceAnalysisResult",
    "ExperimentContext",
    "ExperimentSuiteResult",
    "Fig1Result",
    "ForecastResult",
    "Fig2Result",
    "Fig3Result",
    "Fig4Result",
    "GroundTruthResult",
    "ScaleSpec",
    "Table1Result",
    "Table2Result",
    "default_scale_specs",
    "generate_report",
    "reproduction_checklist",
    "run_all_experiments",
    "run_distance_analysis",
    "run_forecast_experiment",
    "run_fig1",
    "run_fig2",
    "run_fig3",
    "run_fig4",
    "run_ground_truth_validation",
    "run_table1",
    "run_table2",
    "true_area_flows",
]
