"""Fig 2 — heavy-tailed tweeting dynamics.

Fig 2(a) plots the distribution of the number of tweets per user and
Fig 2(b) the distribution of waiting times between consecutive tweets;
both span many decades and exhibit heavy tails, with (a) "essentially
following a power-law distribution".  We reproduce both log-binned PDFs
and quantify the power-law claim with an MLE tail fit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.corpus import TweetCorpus
from repro.extraction.dynamics import (
    EmpiricalDistribution,
    tweets_per_user_distribution,
    waiting_time_distribution,
)
from repro.stats.powerlaw import PowerLawFit, fit_power_law_mle
from repro.viz.histogram import render_loglog_pdf


@dataclass(frozen=True)
class Fig2Result:
    """Both empirical distributions plus the tail fit for panel (a)."""

    tweets_per_user: EmpiricalDistribution
    waiting_times: EmpiricalDistribution
    tweets_tail_fit: PowerLawFit

    def render(self) -> str:
        """Both panels plus tail diagnostics."""
        panel_a = render_loglog_pdf(
            self.tweets_per_user.bin_centers,
            self.tweets_per_user.pdf,
            title="Fig 2(a) — P(No. tweets per user)",
            x_label="tweets per user",
        )
        panel_b = render_loglog_pdf(
            self.waiting_times.bin_centers,
            self.waiting_times.pdf,
            title="Fig 2(b) — P(waiting time)",
            x_label="waiting time (s)",
        )
        fit = self.tweets_tail_fit
        return (
            f"{panel_a}\n\n{panel_b}\n\n"
            f"tweets/user spans {self.tweets_per_user.decades_spanned:.1f} decades; "
            f"waiting times span {self.waiting_times.decades_spanned:.1f} decades\n"
            f"power-law tail fit of tweets/user (x_min={fit.x_min:g}): "
            f"alpha={fit.alpha:.2f}, KS={fit.ks_distance:.3f}, n_tail={fit.n_tail}"
        )


def run_fig2(corpus: TweetCorpus, tail_x_min: float = 5.0) -> Fig2Result:
    """Measure both Fig 2 distributions and the panel-(a) tail exponent."""
    tweets = tweets_per_user_distribution(corpus)
    waits = waiting_time_distribution(corpus)
    fit = fit_power_law_mle(tweets.raw, x_min=tail_x_min, discrete=True)
    return Fig2Result(tweets_per_user=tweets, waiting_times=waits, tweets_tail_fit=fit)
