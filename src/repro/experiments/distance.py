"""Distance-scale analysis: flux vs distance across all three scales.

The paper's future work promises evaluation "at more varieties of
distance scales".  This experiment pools the OD pairs of all three
scales — spanning roughly 2 km to 4,000 km, almost four decades of
distance — and examines:

* the observed mean flux per logarithmic distance bin (with the fitted
  gravity curve for reference);
* the stability of the fitted distance exponent γ across scales and on
  the pooled set (the paper's "loosely follow the gravity law at
  multiple scales" claim, quantified).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.corpus import TweetCorpus
from repro.data.gazetteer import Scale
from repro.experiments.scales import ExperimentContext
from repro.extraction.mobility import ODPairs
from repro.models.gravity import GravityModel
from repro.stats.binning import log_binned_means


def _pooled_pairs(context: ExperimentContext) -> ODPairs:
    """All three scales' positive OD pairs concatenated.

    Sources/destinations are re-indexed per scale block so the arrays
    stay consistent, but models fitted on the pooled set use only
    (m, n, d, T), which are scale-agnostic.
    """
    blocks = [context.flows(scale).pairs() for scale in Scale]
    offset = 0
    sources = []
    dests = []
    for block, scale in zip(blocks, Scale):
        sources.append(block.source + offset)
        dests.append(block.dest + offset)
        offset += len(context.spec(scale).areas)
    return ODPairs(
        source=np.concatenate(sources),
        dest=np.concatenate(dests),
        m=np.concatenate([b.m for b in blocks]),
        n=np.concatenate([b.n for b in blocks]),
        d_km=np.concatenate([b.d_km for b in blocks]),
        flow=np.concatenate([b.flow for b in blocks]),
    )


@dataclass(frozen=True)
class DistanceAnalysisResult:
    """Per-scale and pooled gravity exponents plus binned flux curves."""

    gamma_by_scale: dict[Scale, float]
    gamma_pooled: float
    bin_centers_km: np.ndarray
    mean_normalized_flux: np.ndarray
    bin_counts: np.ndarray
    distance_range_km: tuple[float, float]

    def gamma_spread(self) -> float:
        """Max - min fitted γ across the three scales."""
        values = list(self.gamma_by_scale.values())
        return float(max(values) - min(values))

    def render(self) -> str:
        """Exponent table and the normalised flux-distance curve."""
        lines = [
            "Distance-scale analysis (paper future work: 'more varieties of distances')",
            f"pairs span {self.distance_range_km[0]:.1f} km .. "
            f"{self.distance_range_km[1]:.0f} km",
            "fitted gravity distance exponent gamma:",
        ]
        for scale, gamma in self.gamma_by_scale.items():
            lines.append(f"  {scale.value:<13s} gamma = {gamma:5.2f}")
        lines.append(f"  {'pooled':<13s} gamma = {self.gamma_pooled:5.2f}")
        lines.append(
            f"  spread across scales: {self.gamma_spread():.2f} "
            "(small spread = one law fits all scales)"
        )
        lines.append("normalised flux T/(m n) per distance bin:")
        top = self.mean_normalized_flux.max() if self.mean_normalized_flux.size else 1.0
        for center, flux, count in zip(
            self.bin_centers_km, self.mean_normalized_flux, self.bin_counts
        ):
            bar = "#" * int(round(flux / top * 40)) if top > 0 else ""
            lines.append(f"  {center:9.1f} km {bar} ({count} pairs)")
        return "\n".join(lines)


def run_distance_analysis(
    corpus_or_context: TweetCorpus | ExperimentContext,
) -> DistanceAnalysisResult:
    """Fit γ per scale and pooled; bin normalised flux by distance."""
    if isinstance(corpus_or_context, ExperimentContext):
        context = corpus_or_context
    else:
        context = ExperimentContext(corpus_or_context)
    gamma_by_scale = {}
    for scale in Scale:
        pairs = context.flows(scale).pairs()
        gamma_by_scale[scale] = GravityModel(2).fit(pairs).params.gamma
    pooled = _pooled_pairs(context)
    gamma_pooled = GravityModel(2).fit(pooled).params.gamma
    normalized_flux = pooled.flow / (pooled.m * pooled.n)
    centers, means, counts = log_binned_means(
        pooled.d_km, normalized_flux, bins_per_decade=3
    )
    return DistanceAnalysisResult(
        gamma_by_scale=gamma_by_scale,
        gamma_pooled=gamma_pooled,
        bin_centers_km=centers,
        mean_normalized_flux=means,
        bin_counts=counts,
        distance_range_km=(float(pooled.d_km.min()), float(pooled.d_km.max())),
    )
