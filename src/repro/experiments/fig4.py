"""Fig 4 — mobility estimation scatter: three models × three scales.

Each panel of the paper's Fig 4 scatters model-estimated traffic (x)
against Twitter-extracted traffic (y) on log-log axes, with
logarithmically binned means (red dots) and the ``y = x`` reference
line.  Gravity's points hug the line within about one decade; Radiation
scatters across two to three decades with scale-dependent bias.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.corpus import TweetCorpus
from repro.data.gazetteer import Scale
from repro.experiments.scales import ExperimentContext
from repro.extraction.mobility import ODPairs
from repro.models.base import MobilityModel
from repro.models.evaluation import ModelEvaluation, evaluate_fitted
from repro.models.gravity import GravityModel
from repro.models.radiation import RadiationModel
from repro.viz.scatter import render_loglog_scatter

MODEL_ORDER = ("Gravity 4Param", "Gravity 2Param", "Radiation")


@dataclass(frozen=True)
class PanelResult:
    """One Fig 4 panel: a fitted model evaluated at one scale."""

    scale: Scale
    evaluation: ModelEvaluation

    def render(self) -> str:
        """The panel as a log-log ASCII scatter with its headline scores."""
        ev = self.evaluation
        plot = render_loglog_scatter(
            ev.estimated,
            ev.observed,
            title=f"{ev.model_name} — {self.scale.value}",
            x_label="estimated traffic",
            y_label="traffic from tweets",
        )
        return (
            f"{plot}\n"
            f"r={ev.pearson_r:.3f}  HitRate@50%={ev.hit_rate_50:.3f}  "
            f"logRMSE={ev.log_rmse:.2f}  maxLogErr={ev.max_log_error:.2f} decades  "
            f"underest={ev.underestimation:.2f}"
        )


@dataclass(frozen=True)
class Fig4Result:
    """All nine panels, indexed by (scale, model name)."""

    panels: dict[tuple[Scale, str], PanelResult]

    def panel(self, scale: Scale, model_name: str) -> PanelResult:
        """One panel by scale and model name."""
        return self.panels[(scale, model_name)]

    def render(self) -> str:
        """All panels, scale-major as in the paper's layout."""
        blocks = []
        for scale in Scale:
            for model_name in MODEL_ORDER:
                key = (scale, model_name)
                if key in self.panels:
                    blocks.append(self.panels[key].render())
        return "\n\n".join(blocks)


def standard_models(context: ExperimentContext, scale: Scale) -> list[MobilityModel]:
    """The paper's three models, bound to a scale's area system."""
    flows = context.flows(scale)
    return [GravityModel(4), GravityModel(2), RadiationModel.from_flows(flows)]


def run_fig4(
    corpus_or_context: TweetCorpus | ExperimentContext, min_flow: int = 1
) -> Fig4Result:
    """Fit and evaluate every model at every scale.

    Models are fitted on (and evaluated against) the positive-flow OD
    pairs of each scale, the procedure Section IV describes.
    """
    if isinstance(corpus_or_context, ExperimentContext):
        context = corpus_or_context
    else:
        context = ExperimentContext(corpus_or_context)
    panels: dict[tuple[Scale, str], PanelResult] = {}
    for scale in Scale:
        pairs: ODPairs = context.flows(scale).pairs(min_flow=min_flow)
        for model in standard_models(context, scale):
            fitted = model.fit(pairs)
            panels[(scale, fitted.name)] = PanelResult(
                scale=scale, evaluation=evaluate_fitted(fitted, pairs)
            )
    return Fig4Result(panels=panels)
