"""The forecast-loop experiment: sense → infer → forecast → score.

The library version of ``examples/outbreak_inference.py``: a hidden-
parameter stochastic outbreak unfolds on a Twitter-fitted mobility
network; the "health system" observes only the seed city's early
prevalence, infers (beta, gamma), forecasts arrival days everywhere with
the deterministic model, and is scored against the hidden truth.

This is the deliverable the paper's conclusion promises ("a framework
for the prediction of disease spread"), packaged as a reproducible
experiment with a result object the A13 benchmark regenerates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.corpus import TweetCorpus
from repro.data.gazetteer import Scale
from repro.epidemic.inference import SirFit, fit_sir_curve
from repro.epidemic.network import MobilityNetwork
from repro.epidemic.seir import SEIRParams, simulate_seir
from repro.epidemic.simulation import simulate_stochastic_sir
from repro.experiments.scales import ExperimentContext
from repro.stats.correlation import CorrelationResult, pearson


@dataclass(frozen=True)
class ForecastResult:
    """One full forecast-loop run, scored against the hidden truth."""

    seed_city: str
    hidden_beta: float
    hidden_gamma: float
    inferred: SirFit
    network: MobilityNetwork
    predicted_arrival: np.ndarray
    actual_arrival: np.ndarray
    skill: CorrelationResult
    median_error_days: float

    def render(self) -> str:
        """Scorecard: inferred parameters and arrival-day skill."""
        lines = [
            "Epidemic forecast loop (sense -> infer -> forecast -> score)",
            f"  seed: {self.seed_city}  hidden R0="
            f"{self.hidden_beta / self.hidden_gamma:.2f}  "
            f"inferred R0={self.inferred.r0:.2f}",
            f"  arrival-day skill: r={self.skill.r:.2f} "
            f"(p={self.skill.p_value:.1e}), median |error| = "
            f"{self.median_error_days:.1f} days",
        ]
        order = np.argsort(self.predicted_arrival)
        shown = 0
        for index in order:
            if self.network.names[index] == self.seed_city:
                continue
            p = self.predicted_arrival[index]
            a = self.actual_arrival[index]
            if not (np.isfinite(p) and np.isfinite(a)):
                continue
            lines.append(
                f"    {self.network.names[index]:<18s} forecast {p:5.0f} d, "
                f"actual {a:5.0f} d"
            )
            shown += 1
            if shown >= 8:
                break
        return "\n".join(lines)


def run_forecast_experiment(
    corpus_or_context: TweetCorpus | ExperimentContext | None,
    seed_city: str = "Brisbane",
    hidden_beta: float = 0.55,
    hidden_gamma: float = 0.22,
    observation_days: int = 60,
    initial_cases: int = 20,
    arrival_threshold: float = 20.0,
    outbreak_seed: int = 42,
    network: MobilityNetwork | None = None,
) -> ForecastResult:
    """Run the full loop on one corpus; see the module docstring.

    Pass ``network`` to forecast on a pre-built (possibly intervened)
    mobility network — the scenario engine does this; the default fits
    Gravity 2Param on the context's national flows.
    """
    if network is None:
        if corpus_or_context is None:
            raise ValueError("need a corpus/context or an explicit network")
        if isinstance(corpus_or_context, ExperimentContext):
            context = corpus_or_context
        else:
            context = ExperimentContext(corpus_or_context)
        network = context.network(Scale.NATIONAL, "gravity2")
    seed_index = network.names.index(seed_city)

    truth = simulate_stochastic_sir(
        network,
        beta=hidden_beta,
        gamma=hidden_gamma,
        initial_infected={seed_city: initial_cases},
        t_max_days=365,
        rng=np.random.default_rng(outbreak_seed),
    )
    observed_days = np.arange(0, observation_days, dtype=np.float64)
    observed_cases = truth.i[:observation_days, seed_index].astype(np.float64)
    inferred = fit_sir_curve(
        observed_days,
        observed_cases,
        population=float(network.populations[seed_index]),
        initial_infected=float(initial_cases),
    )

    forecast = simulate_seir(
        network,
        SEIRParams(beta=inferred.beta, sigma=float("inf"), gamma=inferred.gamma),
        {seed_city: float(initial_cases)},
        t_max_days=365,
    )
    predicted = forecast.arrival_times(threshold=arrival_threshold)
    actual = np.full(network.n_patches, np.inf)
    for patch in range(network.n_patches):
        hits = np.nonzero(truth.i[:, patch] >= arrival_threshold)[0]
        if hits.size:
            actual[patch] = float(hits[0])

    finite = np.isfinite(predicted) & np.isfinite(actual)
    finite[seed_index] = False
    skill = pearson(predicted[finite], actual[finite])
    errors = np.abs(predicted[finite] - actual[finite])
    return ForecastResult(
        seed_city=seed_city,
        hidden_beta=hidden_beta,
        hidden_gamma=hidden_gamma,
        inferred=inferred,
        network=network,
        predicted_arrival=predicted,
        actual_arrival=actual,
        skill=skill,
        median_error_days=float(np.median(errors)) if errors.size else float("nan"),
    )
