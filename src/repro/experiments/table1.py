"""Table I — statistics of the dataset.

The paper's Table I reports, for the Australian collection box and the
Sept 2013 – Apr 2014 window: 6,304,176 tweets, 473,956 unique users,
13.3 average tweets per user, 35.5 h average waiting time and 4.76
average locations per user, plus the counts of users above 50/100/500/
1000 tweets quoted in the text (23462, 10031, 766, 180).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.corpus import TweetCorpus
from repro.data.schema import CorpusStats

#: The paper's Table I values, for side-by-side reporting.
PAPER_TABLE1 = {
    "n_tweets": 6_304_176,
    "n_users": 473_956,
    "avg_tweets_per_user": 13.3,
    "avg_waiting_time_hours": 35.5,
    "avg_locations_per_user": 4.76,
}

#: Activity thresholds quoted in Section II with the paper's user counts.
PAPER_ACTIVITY_BUCKETS = {50: 23_462, 100: 10_031, 500: 766, 1000: 180}


@dataclass(frozen=True)
class Table1Result:
    """Measured Table I statistics plus heavy-user bucket counts."""

    stats: CorpusStats
    activity_buckets: dict[int, int]

    def render(self) -> str:
        """The Table I row, measured vs paper."""
        s = self.stats
        lines = [
            "Table I — statistics of the dataset (measured vs paper)",
            f"{'':28s}{'measured':>14s}{'paper':>14s}",
            f"{'No. Tweets':28s}{s.n_tweets:>14,}{PAPER_TABLE1['n_tweets']:>14,}",
            f"{'No. unique users':28s}{s.n_users:>14,}{PAPER_TABLE1['n_users']:>14,}",
            f"{'Avg. Tweets / user':28s}{s.avg_tweets_per_user:>14.2f}"
            f"{PAPER_TABLE1['avg_tweets_per_user']:>14.1f}",
            f"{'Avg. waiting time (h)':28s}{s.avg_waiting_time_hours:>14.1f}"
            f"{PAPER_TABLE1['avg_waiting_time_hours']:>14.1f}",
            f"{'Avg. locations / user':28s}{s.avg_locations_per_user:>14.2f}"
            f"{PAPER_TABLE1['avg_locations_per_user']:>14.2f}",
            f"{'Longitude range':28s}"
            f"{f'[{s.min_lon:.2f}, {s.max_lon:.2f}]':>28s}",
            f"{'Latitude range':28s}"
            f"{f'[{s.min_lat:.2f}, {s.max_lat:.2f}]':>28s}",
            "",
            "Users with at least N tweets (measured vs paper @473,956 users):",
        ]
        for threshold, paper_count in PAPER_ACTIVITY_BUCKETS.items():
            measured = self.activity_buckets[threshold]
            lines.append(f"  >= {threshold:>5d}: {measured:>8,}   (paper: {paper_count:,})")
        return "\n".join(lines)


def run_table1(corpus: TweetCorpus) -> Table1Result:
    """Measure the Table I statistics on a corpus."""
    return Table1Result(
        stats=corpus.stats(),
        activity_buckets={
            threshold: corpus.users_with_at_least(threshold)
            for threshold in PAPER_ACTIVITY_BUCKETS
        },
    )
