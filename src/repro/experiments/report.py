"""Reproduction report generation.

Turns an :class:`~repro.experiments.runner.ExperimentSuiteResult` into a
self-contained markdown report: a pass/fail checklist of the paper's
qualitative findings followed by every artefact's rendering.  The
checklist is also available programmatically for CI-style gating
(:func:`reproduction_checklist`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.gazetteer import Scale
from repro.experiments.runner import ExperimentSuiteResult


@dataclass(frozen=True, slots=True)
class ChecklistItem:
    """One verifiable claim from the paper, with its measured verdict."""

    claim: str
    passed: bool
    detail: str


def reproduction_checklist(suite: ExperimentSuiteResult) -> list[ChecklistItem]:
    """Evaluate every qualitative claim of the paper on a suite result."""
    items: list[ChecklistItem] = []

    overall = suite.fig3.overall
    items.append(
        ChecklistItem(
            claim="Population distribution is estimable from tweets "
            "(strong, significant 60-area correlation)",
            passed=overall.r > 0.7 and overall.p_value < 1e-8,
            detail=f"r={overall.r:.3f}, p={overall.p_value:.2e} (paper: 0.816, 2.06e-15)",
        )
    )

    per_scale = {s: suite.fig3.per_scale[s].correlation.r for s in Scale}
    items.append(
        ChecklistItem(
            claim="Correlation weakens from national to metropolitan scale",
            passed=per_scale[Scale.NATIONAL] > per_scale[Scale.METROPOLITAN],
            detail=(
                f"national r={per_scale[Scale.NATIONAL]:.3f}, "
                f"metropolitan r={per_scale[Scale.METROPOLITAN]:.3f}"
            ),
        )
    )

    metro = suite.fig3.per_scale[Scale.METROPOLITAN].correlation.r
    sensitivity = suite.fig3.metro_sensitivity.correlation.r
    items.append(
        ChecklistItem(
            claim="Shrinking the metropolitan radius to 0.5 km degrades "
            "the estimate (Fig 3b)",
            passed=sensitivity < metro,
            detail=f"r drops {metro:.3f} -> {sensitivity:.3f}",
        )
    )

    items.append(
        ChecklistItem(
            claim="Tweets/user and waiting times are heavy-tailed over "
            "many decades (Fig 2)",
            passed=(
                suite.fig2.tweets_per_user.decades_spanned >= 2.5
                and suite.fig2.waiting_times.decades_spanned >= 6.0
            ),
            detail=(
                f"{suite.fig2.tweets_per_user.decades_spanned:.1f} and "
                f"{suite.fig2.waiting_times.decades_spanned:.1f} decades"
            ),
        )
    )

    items.append(
        ChecklistItem(
            claim="Gravity beats Radiation at every scale (Table II headline)",
            passed=suite.table2.gravity_beats_radiation(),
            detail="; ".join(
                f"{scale.value}: best={suite.table2.best_model_by_pearson(scale)}"
                for scale in Scale
            ),
        )
    )

    radiation_under = [
        suite.fig4.panel(scale, "Radiation").evaluation.underestimation
        for scale in Scale
    ]
    gravity_under = [
        suite.fig4.panel(scale, "Gravity 2Param").evaluation.underestimation
        for scale in Scale
    ]
    items.append(
        ChecklistItem(
            claim="Radiation tends to underestimate more than Gravity (Fig 4)",
            passed=sum(radiation_under) > sum(gravity_under),
            detail=(
                f"mean underestimation {sum(radiation_under) / 3:.2f} vs "
                f"{sum(gravity_under) / 3:.2f}"
            ),
        )
    )

    density = suite.fig1.city_density_correlation
    items.append(
        ChecklistItem(
            claim="Tweet density map resembles the population distribution (Fig 1)",
            passed=density.r > 0.5,
            detail=f"city-density log correlation r={density.r:.3f}",
        )
    )
    return items


def generate_report(suite: ExperimentSuiteResult, title_note: str = "") -> str:
    """A markdown reproduction report for one suite run."""
    checklist = reproduction_checklist(suite)
    n_passed = sum(item.passed for item in checklist)
    lines = [
        "# Reproduction report — Liu et al., ICDE 2015",
        "",
    ]
    if title_note:
        lines.extend([title_note, ""])
    lines.extend(
        [
            f"## Checklist — {n_passed}/{len(checklist)} claims reproduced",
            "",
            "| Claim | Verdict | Measured |",
            "|---|---|---|",
        ]
    )
    for item in checklist:
        verdict = "PASS" if item.passed else "FAIL"
        lines.append(f"| {item.claim} | {verdict} | {item.detail} |")
    sections = [
        ("Table I — dataset statistics", suite.table1.render()),
        ("Fig 1 — tweet density", suite.fig1.render()),
        ("Fig 2 — tweeting dynamics", suite.fig2.render()),
        ("Fig 3 — population estimation", suite.fig3.render()),
        ("Fig 4 — mobility estimation", suite.fig4.render()),
        ("Table II — model performance", suite.table2.render()),
    ]
    for heading, body in sections:
        lines.extend(["", f"## {heading}", "", "```", body, "```"])
    return "\n".join(lines)
