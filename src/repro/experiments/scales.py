"""Shared experiment context: the three scales plus cached extraction.

Several experiments need the same expensive intermediates over one
corpus — the spatial index, per-scale area labels, per-scale OD flows.
:class:`ExperimentContext` computes each lazily and memoises it so a
full experiment suite builds the index exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.corpus import TweetCorpus
from repro.data.gazetteer import Area, Scale, areas_for_scale, search_radius_km
from repro.extraction.mobility import ODFlows, extract_od_flows
from repro.extraction.population import (
    AreaObservation,
    assign_tweets_to_areas,
    extract_area_observations,
)
from repro.geo.index import GridIndex


@dataclass(frozen=True, slots=True)
class ScaleSpec:
    """One geographic scale: its areas and its search radius ε."""

    scale: Scale
    areas: tuple[Area, ...]
    radius_km: float

    @property
    def label(self) -> str:
        """Capitalised scale name as the paper prints it."""
        return self.scale.value.capitalize()


def default_scale_specs() -> tuple[ScaleSpec, ...]:
    """The paper's three scales with their Section III radii."""
    return tuple(
        ScaleSpec(
            scale=scale,
            areas=areas_for_scale(scale),
            radius_km=search_radius_km(scale),
        )
        for scale in Scale
    )


class ExperimentContext:
    """A corpus plus lazily cached per-scale extraction products."""

    def __init__(self, corpus: TweetCorpus, index: GridIndex | None = None) -> None:
        self.corpus = corpus
        self.specs = default_scale_specs()
        self._index = index
        self._observations: dict[tuple[Scale, float], list[AreaObservation]] = {}
        self._labels: dict[tuple[Scale, float], "object"] = {}
        self._flows: dict[tuple[Scale, float], ODFlows] = {}

    @property
    def index(self) -> GridIndex:
        """The spatial index over the corpus (built on first use)."""
        if self._index is None:
            self._index = GridIndex(self.corpus.lats, self.corpus.lons)
        return self._index

    def spec(self, scale: Scale) -> ScaleSpec:
        """The spec for one scale."""
        for spec in self.specs:
            if spec.scale is scale:
                return spec
        raise KeyError(scale)

    def observations(
        self, scale: Scale, radius_km: float | None = None
    ) -> list[AreaObservation]:
        """Cached ε-radius area observations for a scale."""
        spec = self.spec(scale)
        radius = spec.radius_km if radius_km is None else radius_km
        key = (scale, radius)
        if key not in self._observations:
            self._observations[key] = extract_area_observations(
                self.corpus, spec.areas, radius, index=self.index
            )
        return self._observations[key]

    def labels(self, scale: Scale, radius_km: float | None = None):
        """Cached per-tweet area labels for a scale."""
        spec = self.spec(scale)
        radius = spec.radius_km if radius_km is None else radius_km
        key = (scale, radius)
        if key not in self._labels:
            self._labels[key] = assign_tweets_to_areas(
                self.corpus, spec.areas, radius, index=self.index
            )
        return self._labels[key]

    def flows(self, scale: Scale, radius_km: float | None = None) -> ODFlows:
        """Cached OD flows for a scale."""
        spec = self.spec(scale)
        radius = spec.radius_km if radius_km is None else radius_km
        key = (scale, radius)
        if key not in self._flows:
            self._flows[key] = extract_od_flows(
                self.corpus, self.labels(scale, radius), spec.areas
            )
        return self._flows[key]
