"""Shared experiment context: the three scales plus cached extraction.

Several experiments need the same expensive intermediates over one
corpus — the spatial index, per-scale area labels, per-scale OD flows.
:class:`ExperimentContext` computes each lazily and memoises it so a
full experiment suite builds the index exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.world import World
from repro.data.corpus import TweetCorpus
from repro.data.gazetteer import Area, Scale
from repro.epidemic.network import MobilityNetwork, network_from_model
from repro.extraction.mobility import ODFlows, extract_od_flows
from repro.extraction.population import (
    AreaObservation,
    assign_tweets_to_areas,
    extract_area_observations,
)
from repro.geo.index import GridIndex
from repro.models.registry import fit_kind


@dataclass(frozen=True, slots=True)
class ScaleSpec:
    """One geographic scale: its :class:`World` (areas + search radius ε)."""

    scale: Scale
    world: World

    @property
    def areas(self) -> tuple[Area, ...]:
        """The scale's study areas (from the world)."""
        return self.world.areas

    @property
    def radius_km(self) -> float:
        """The scale's default search radius ε (from the world)."""
        return self.world.radius_km

    @property
    def label(self) -> str:
        """Capitalised scale name as the paper prints it."""
        return self.scale.value.capitalize()


def default_scale_specs(gazetteer: str | None = None) -> tuple[ScaleSpec, ...]:
    """The three scales with their Section III radii.

    Defaults to the paper's 60 legacy areas; pass a gazetteer spec
    (``synth:1000``) to run the same three-scale structure over a
    country-scale synthetic area system.
    """
    return tuple(
        ScaleSpec(scale=scale, world=World.from_scale(scale, gazetteer=gazetteer))
        for scale in Scale
    )


class ExperimentContext:
    """A corpus plus lazily cached per-scale extraction products."""

    def __init__(
        self,
        corpus: TweetCorpus,
        index: GridIndex | None = None,
        gazetteer: str | None = None,
    ) -> None:
        self.corpus = corpus
        self.gazetteer = gazetteer
        self.specs = default_scale_specs(gazetteer)
        self._index = index
        self._worlds: dict[tuple[Scale, float], World] = {}
        self._observations: dict[tuple[Scale, float], list[AreaObservation]] = {}
        self._labels: dict[tuple[Scale, float], "object"] = {}
        self._flows: dict[tuple[Scale, float], ODFlows] = {}
        self._networks: dict[tuple[Scale, str, float], MobilityNetwork] = {}

    @property
    def index(self) -> GridIndex:
        """The spatial index over the corpus (built on first use)."""
        if self._index is None:
            self._index = GridIndex(self.corpus.lats, self.corpus.lons)
        return self._index

    def spec(self, scale: Scale) -> ScaleSpec:
        """The spec for one scale."""
        for spec in self.specs:
            if spec.scale is scale:
                return spec
        raise KeyError(scale)

    def world(self, scale: Scale, radius_km: float | None = None) -> World:
        """The (cached) world for a scale, optionally at a non-default ε.

        Worlds are memoised per ``(scale, radius)`` so derived geometry
        (distance matrices, centre columns) is computed at most once per
        radius across a whole experiment suite.
        """
        spec = self.spec(scale)
        if radius_km is None or radius_km == spec.radius_km:
            return spec.world
        key = (scale, radius_km)
        if key not in self._worlds:
            self._worlds[key] = spec.world.with_radius(radius_km)
        return self._worlds[key]

    def observations(
        self, scale: Scale, radius_km: float | None = None
    ) -> list[AreaObservation]:
        """Cached ε-radius area observations for a scale."""
        spec = self.spec(scale)
        radius = spec.radius_km if radius_km is None else radius_km
        key = (scale, radius)
        if key not in self._observations:
            self._observations[key] = extract_area_observations(
                self.corpus, self.world(scale, radius), radius, index=self.index
            )
        return self._observations[key]

    def labels(self, scale: Scale, radius_km: float | None = None):
        """Cached per-tweet area labels for a scale."""
        spec = self.spec(scale)
        radius = spec.radius_km if radius_km is None else radius_km
        key = (scale, radius)
        if key not in self._labels:
            self._labels[key] = assign_tweets_to_areas(
                self.corpus, self.world(scale, radius), radius, index=self.index
            )
        return self._labels[key]

    def flows(self, scale: Scale, radius_km: float | None = None) -> ODFlows:
        """Cached OD flows for a scale."""
        spec = self.spec(scale)
        radius = spec.radius_km if radius_km is None else radius_km
        key = (scale, radius)
        if key not in self._flows:
            self._flows[key] = extract_od_flows(
                self.corpus, self.labels(scale, radius), spec.areas
            )
        return self._flows[key]

    def network(
        self,
        scale: Scale,
        model: str = "gravity2",
        trips_per_person_per_day: float = 0.05,
    ) -> MobilityNetwork:
        """Cached model-coupled mobility network for a scale.

        ``model`` is a :data:`repro.models.MODEL_KINDS` string; the
        model is fitted on the scale's cached OD flows and coupled over
        the world's cached centre-distance matrix, so repeated scenario
        evaluations over one context fit each (scale, kind) pair once.
        """
        key = (scale, model, trips_per_person_per_day)
        if key not in self._networks:
            fitted = fit_kind(model, self.flows(scale))
            self._networks[key] = network_from_model(
                fitted, self.world(scale), trips_per_person_per_day
            )
        return self._networks[key]
