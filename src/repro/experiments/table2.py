"""Table II — model performance: Pearson (upper) and HitRate@50% (lower).

The paper's Table II, with the best value per scale/metric highlighted:

    =============  Gravity 4Param  Gravity 2Param  Radiation
    National        0.877 / 0.330   0.912*/ 0.397*  0.840 / 0.184
    State           0.893 / 0.487*  0.896*/ 0.397   0.742 / 0.166
    Metropolitan    0.948 / 0.530   0.963*/ 0.600*  0.918 / 0.397

Headline qualitative findings this reproduction must preserve: the
gravity family beats Radiation at every scale, and Gravity 2Param is the
best overall.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.corpus import TweetCorpus
from repro.data.gazetteer import Scale
from repro.experiments.fig4 import MODEL_ORDER, Fig4Result, run_fig4
from repro.experiments.scales import ExperimentContext

#: The paper's Table II cells as (pearson, hit_rate) per scale and model.
PAPER_TABLE2 = {
    (Scale.NATIONAL, "Gravity 4Param"): (0.877, 0.330),
    (Scale.NATIONAL, "Gravity 2Param"): (0.912, 0.397),
    (Scale.NATIONAL, "Radiation"): (0.840, 0.184),
    (Scale.STATE, "Gravity 4Param"): (0.893, 0.487),
    (Scale.STATE, "Gravity 2Param"): (0.896, 0.397),
    (Scale.STATE, "Radiation"): (0.742, 0.166),
    (Scale.METROPOLITAN, "Gravity 4Param"): (0.948, 0.530),
    (Scale.METROPOLITAN, "Gravity 2Param"): (0.963, 0.600),
    (Scale.METROPOLITAN, "Radiation"): (0.918, 0.397),
}


@dataclass(frozen=True)
class Table2Result:
    """Measured (pearson, hit_rate) per scale × model, plus the Fig 4 data."""

    cells: dict[tuple[Scale, str], tuple[float, float]]
    fig4: Fig4Result

    def best_model_by_pearson(self, scale: Scale) -> str:
        """The winning model at a scale by Pearson correlation."""
        return max(MODEL_ORDER, key=lambda name: self.cells[(scale, name)][0])

    def gravity_beats_radiation(self) -> bool:
        """Whether some gravity variant beats Radiation at every scale.

        This is the paper's headline qualitative claim (contradicting
        Simini et al.'s universality of the radiation model).
        """
        for scale in Scale:
            radiation_r = self.cells[(scale, "Radiation")][0]
            best_gravity_r = max(
                self.cells[(scale, "Gravity 4Param")][0],
                self.cells[(scale, "Gravity 2Param")][0],
            )
            if best_gravity_r <= radiation_r:
                return False
        return True

    def render(self) -> str:
        """Measured vs paper Table II, best-per-row marked with ``*``."""
        lines = [
            "Table II — Pearson (upper) / HitRate@50% (lower), measured [paper]",
            f"{'':14s}" + "".join(f"{name:>24s}" for name in MODEL_ORDER),
        ]
        for scale in Scale:
            best_r = max(self.cells[(scale, name)][0] for name in MODEL_ORDER)
            best_h = max(self.cells[(scale, name)][1] for name in MODEL_ORDER)
            r_row = f"{scale.value.capitalize():14s}"
            h_row = f"{'':14s}"
            for name in MODEL_ORDER:
                r, h = self.cells[(scale, name)]
                pr, ph = PAPER_TABLE2[(scale, name)]
                r_mark = "*" if r == best_r else " "
                h_mark = "*" if h == best_h else " "
                r_row += f"{f'{r:.3f}{r_mark} [{pr:.3f}]':>24s}"
                h_row += f"{f'{h:.3f}{h_mark} [{ph:.3f}]':>24s}"
            lines.append(r_row)
            lines.append(h_row)
        lines.append("")
        verdict = "holds" if self.gravity_beats_radiation() else "DOES NOT hold"
        lines.append(
            f"Headline claim (Gravity beats Radiation at every scale): {verdict}"
        )
        return "\n".join(lines)


def table2_from_fig4(fig4: Fig4Result) -> Table2Result:
    """Tabulate Table II from already-computed Fig 4 panels."""
    cells = {
        key: (panel.evaluation.pearson_r, panel.evaluation.hit_rate_50)
        for key, panel in fig4.panels.items()
    }
    return Table2Result(cells=cells, fig4=fig4)


def run_table2(
    corpus_or_context: TweetCorpus | ExperimentContext, min_flow: int = 1
) -> Table2Result:
    """Fit/evaluate all models at all scales and tabulate the scores."""
    if isinstance(corpus_or_context, ExperimentContext):
        context = corpus_or_context
    else:
        context = ExperimentContext(corpus_or_context)
    return table2_from_fig4(run_fig4(context, min_flow=min_flow))
