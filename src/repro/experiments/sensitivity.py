"""Sensitivity analyses: identifiability and noise-robustness sweeps.

Two questions a reviewer would ask of the pipeline:

1. **Identifiability** — if the world's true travel kernel had a
   different distance exponent, would the fitted γ track it?
   (:func:`gamma_identifiability_sweep`)
2. **Noise robustness** — how fast does the Fig 3 population
   correlation decay as per-place Twitter-adoption noise grows?
   (:func:`adoption_noise_sweep`)

Both regenerate small corpora per sweep point, so they live behind the
benchmark harness (A12) rather than the default test run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.data.gazetteer import Scale
from repro.experiments.fig3 import run_fig3
from repro.experiments.scales import ExperimentContext
from repro.models.gravity import GravityModel
from repro.synth.config import SynthConfig
from repro.synth.generator import generate_corpus


@dataclass(frozen=True)
class GammaSweepPoint:
    """One identifiability sweep point: kernel γ in, fitted γ out."""

    true_gamma: float
    fitted_gamma: float
    pearson_r: float


def gamma_identifiability_sweep(
    true_gammas: Sequence[float],
    n_users: int = 8_000,
    seed: int = 20150413,
) -> list[GammaSweepPoint]:
    """Regenerate the world per γ and refit at the national scale.

    The fitted exponent lives at the *area* level while the kernel acts
    at the *site* level, so exact equality is not expected — but the
    fitted values must increase monotonically with the truth for the
    fit to mean anything.
    """
    points = []
    for true_gamma in true_gammas:
        config = SynthConfig(n_users=n_users, seed=seed, gravity_gamma=float(true_gamma))
        corpus = generate_corpus(config).corpus
        context = ExperimentContext(corpus)
        pairs = context.flows(Scale.NATIONAL).pairs()
        fitted = GravityModel(2).fit(pairs)
        from repro.models.evaluation import evaluate_fitted

        evaluation = evaluate_fitted(fitted, pairs)
        points.append(
            GammaSweepPoint(
                true_gamma=float(true_gamma),
                fitted_gamma=fitted.params.gamma,
                pearson_r=evaluation.pearson_r,
            )
        )
    return points


@dataclass(frozen=True)
class NoiseSweepPoint:
    """One robustness sweep point: adoption σ in, Fig 3 correlations out."""

    adoption_sigma: float
    overall_r: float
    national_r: float
    metro_r: float


def adoption_noise_sweep(
    sigmas: Sequence[float],
    n_users: int = 8_000,
    seed: int = 20150413,
) -> list[NoiseSweepPoint]:
    """Regenerate per adoption-noise level and measure Fig 3."""
    points = []
    for sigma in sigmas:
        config = SynthConfig(n_users=n_users, seed=seed, adoption_sigma=float(sigma))
        corpus = generate_corpus(config).corpus
        result = run_fig3(ExperimentContext(corpus))
        points.append(
            NoiseSweepPoint(
                adoption_sigma=float(sigma),
                overall_r=result.overall.r,
                national_r=result.per_scale[Scale.NATIONAL].correlation.r,
                metro_r=result.per_scale[Scale.METROPOLITAN].correlation.r,
            )
        )
    return points


def render_gamma_sweep(points: Sequence[GammaSweepPoint]) -> str:
    """Tabulate an identifiability sweep."""
    lines = ["gamma identifiability (site-level truth -> area-level fit):"]
    for point in points:
        lines.append(
            f"  true={point.true_gamma:4.2f}  fitted={point.fitted_gamma:5.2f}  "
            f"r={point.pearson_r:.3f}"
        )
    fitted = [p.fitted_gamma for p in points]
    monotone = all(a <= b + 0.15 for a, b in zip(fitted, fitted[1:]))
    lines.append(f"  fitted gamma tracks the truth monotonically: {monotone}")
    return "\n".join(lines)


def render_noise_sweep(points: Sequence[NoiseSweepPoint]) -> str:
    """Tabulate a noise-robustness sweep."""
    lines = ["adoption-noise robustness (Fig 3 correlations per sigma):"]
    for point in points:
        lines.append(
            f"  sigma={point.adoption_sigma:4.2f}  overall r={point.overall_r:.3f}  "
            f"national r={point.national_r:.3f}  metro r={point.metro_r:.3f}"
        )
    return "\n".join(lines)
