"""Fig 1 — the tweet density map of Australia.

The paper's Fig 1 is a log-scaled density visualisation of all geo-tagged
tweets, which "highlights Australia's most dense areas and roughly
resembles its population distribution".  We reproduce it as a density
grid over the Table I bounding box, rendered as a terminal heat map, and
quantify the "resembles the population distribution" claim: the log
density at the 20 national city centres should correlate with log census
population.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.corpus import TweetCorpus
from repro.data.gazetteer import Scale, areas_for_scale
from repro.geo.bbox import AUSTRALIA_BBOX
from repro.geo.grid import DensityGrid, GridSpec
from repro.stats.correlation import CorrelationResult, log_pearson
from repro.viz.density import render_density_map


@dataclass(frozen=True)
class Fig1Result:
    """The density grid plus the density-vs-population check."""

    grid: DensityGrid
    city_density_correlation: CorrelationResult

    def render(self, max_width: int = 100) -> str:
        """The heat map plus the quantified resemblance claim."""
        map_text = render_density_map(
            self.grid, max_width=max_width, title="Fig 1 — geo-tagged tweet density"
        )
        corr = self.city_density_correlation
        return (
            f"{map_text}\n"
            f"log density at the 20 national city centres vs log census population: "
            f"r={corr.r:.3f} (p={corr.p_value:.2e})"
        )


def run_fig1(corpus: TweetCorpus, cell_km: float = 25.0) -> Fig1Result:
    """Bin the corpus onto a density grid and check city-density correlation."""
    spec = GridSpec.for_resolution_km(AUSTRALIA_BBOX, cell_km)
    grid = DensityGrid(spec)
    grid.add_many(corpus.lats, corpus.lons)
    cities = areas_for_scale(Scale.NATIONAL)
    densities = []
    populations = []
    for city in cities:
        cell = spec.cell_of(city.center.lat, city.center.lon)
        if cell is None:
            continue
        densities.append(float(grid.counts[cell]))
        populations.append(float(city.population))
    correlation = log_pearson(np.array(densities), np.array(populations))
    return Fig1Result(grid=grid, city_density_correlation=correlation)
