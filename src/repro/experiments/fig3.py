"""Fig 3 — Twitter population vs census population at three scales.

Fig 3(a): for each of the 60 areas (20 per scale, ε = 50/25/2 km) the
rescaled number of unique Twitter users is plotted against census
population; the paper reports an overall Pearson r = 0.816 with
p = 2.06e-15 and notes the correlation weakens from national to
metropolitan.  Fig 3(b) repeats the metropolitan extraction with
ε = 0.5 km, which visibly degrades the fit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.corpus import TweetCorpus
from repro.data.gazetteer import METRO_SENSITIVITY_RADIUS_KM, Scale
from repro.experiments.scales import ExperimentContext
from repro.extraction.population import twitter_population_arrays
from repro.stats.correlation import CorrelationResult, log_pearson, pearson
from repro.stats.rescale import rescale_to_census
from repro.viz.scatter import render_loglog_scatter

#: The paper's overall Fig 3(a) correlation across all 60 areas.
PAPER_OVERALL_R = 0.816
PAPER_OVERALL_P = 2.06e-15


@dataclass(frozen=True)
class ScalePopulationResult:
    """One scale's 20-area comparison."""

    scale: Scale
    radius_km: float
    twitter_users: np.ndarray
    census: np.ndarray
    rescaled: np.ndarray
    rescale_factor: float
    correlation: CorrelationResult

    @property
    def median_users(self) -> float:
        """Median Twitter users per area (the paper quotes 4166/743/3988)."""
        return float(np.median(self.twitter_users))


@dataclass(frozen=True)
class Fig3Result:
    """All per-scale results, the pooled correlation, and the 0.5 km check."""

    per_scale: dict[Scale, ScalePopulationResult]
    overall: CorrelationResult
    metro_sensitivity: ScalePopulationResult
    sensitivity_radius_km: float = field(default=METRO_SENSITIVITY_RADIUS_KM)

    def render(self) -> str:
        """Scatter plus the per-scale and overall correlation summary."""
        rescaled = np.concatenate(
            [r.rescaled for r in self.per_scale.values()]
        )
        census = np.concatenate([r.census for r in self.per_scale.values()])
        plot = render_loglog_scatter(
            rescaled,
            census,
            title="Fig 3(a) — rescaled Twitter users vs census population (60 areas)",
            x_label="rescaled unique Twitter users",
            y_label="census population",
            binned_means=False,
        )
        lines = [plot, ""]
        for result in self.per_scale.values():
            lines.append(
                f"  {result.scale.value:<13s} eps={result.radius_km:>5.1f} km  "
                f"r={result.correlation.r:.3f}  C={result.rescale_factor:8.1f}  "
                f"median users={result.median_users:.0f}"
            )
        lines.append(
            f"  overall (60 areas): r={self.overall.r:.3f} "
            f"p={self.overall.p_value:.2e}   [paper: r={PAPER_OVERALL_R}, "
            f"p={PAPER_OVERALL_P:.2e}]"
        )
        metro = self.per_scale[Scale.METROPOLITAN]
        lines.append(
            f"  Fig 3(b) metropolitan eps={self.sensitivity_radius_km} km: "
            f"r={self.metro_sensitivity.correlation.r:.3f} "
            f"(vs {metro.correlation.r:.3f} at eps={metro.radius_km} km — "
            f"smaller radius degrades the estimate, as in the paper)"
        )
        return "\n".join(lines)


def _scale_result(
    context: ExperimentContext, scale: Scale, radius_km: float | None = None
) -> ScalePopulationResult:
    spec = context.spec(scale)
    radius = spec.radius_km if radius_km is None else radius_km
    observations = context.observations(scale, radius)
    twitter, census = twitter_population_arrays(observations)
    rescaled, factor = rescale_to_census(twitter, census)
    return ScalePopulationResult(
        scale=scale,
        radius_km=radius,
        twitter_users=twitter,
        census=census,
        rescaled=rescaled,
        rescale_factor=factor,
        correlation=log_pearson(twitter, census),
    )


def run_fig3(corpus_or_context: TweetCorpus | ExperimentContext) -> Fig3Result:
    """Run the three-scale population comparison plus the 0.5 km check."""
    if isinstance(corpus_or_context, ExperimentContext):
        context = corpus_or_context
    else:
        context = ExperimentContext(corpus_or_context)
    per_scale = {scale: _scale_result(context, scale) for scale in Scale}
    # The pooled correlation is computed in log space over the rescaled
    # values, i.e. over the 60 points exactly as plotted in Fig 3(a).
    log_rescaled = []
    log_census = []
    for result in per_scale.values():
        keep = result.rescaled > 0
        log_rescaled.append(np.log10(result.rescaled[keep]))
        log_census.append(np.log10(result.census[keep]))
    overall = pearson(np.concatenate(log_rescaled), np.concatenate(log_census))
    metro_sensitivity = _scale_result(
        context, Scale.METROPOLITAN, METRO_SENSITIVITY_RADIUS_KM
    )
    return Fig3Result(
        per_scale=per_scale, overall=overall, metro_sensitivity=metro_sensitivity
    )
