"""Ground-truth validation of the paper's Section IV proposal.

The paper ends Section IV with an untested claim:

    "by replacing m and n with the population from census, it is
    feasible to estimate the real-world mobility between areas in
    Australia. We will test this proposal in future work."

A synthetic reproduction can test it *now*: the generator knows every
user's true site-level movement, so the "real-world mobility" the paper
can only hypothesise about is observable here.  The experiment:

1. extract OD flows from tweets exactly as the paper does (the noisy,
   sampled view);
2. fit the models on those Twitter flows;
3. predict flows for every area pair from census populations and
   distances;
4. compare the predictions against the *true* area-level trip counts
   reconstructed from the generator's site transitions.

If the paper's proposal is sound, the Twitter-fitted gravity model
should predict the true flows about as well as it fits the Twitter
flows themselves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.data.gazetteer import Area, Scale, areas_for_scale, search_radius_km
from repro.experiments.scales import ExperimentContext
from repro.extraction.mobility import ODFlows, ODPairs
from repro.geo.distance import haversine_km
from repro.models.evaluation import ModelEvaluation, evaluate_fitted
from repro.models.gravity import GravityModel
from repro.models.radiation import RadiationModel
from repro.synth.generator import GenerationResult


def _site_area_labels(
    result: GenerationResult, areas: Sequence[Area], radius_km: float
) -> np.ndarray:
    """Nearest study area (within ε) for each world site, -1 otherwise."""
    labels = np.full(len(result.world), -1, dtype=np.int64)
    for site_index, site in enumerate(result.world.sites):
        best = -1
        best_distance = radius_km
        for area_index, area in enumerate(areas):
            d = haversine_km(site.activity_center, area.center)
            if d <= best_distance:
                if d < best_distance or best == -1:
                    best = area_index
                    best_distance = d
        labels[site_index] = best
    return labels


def true_area_flows(
    result: GenerationResult, areas: Sequence[Area], radius_km: float
) -> ODFlows:
    """The generator's true trip counts aggregated to study areas.

    Counts every consecutive same-user pair of tweets whose generating
    *sites* map to two different study areas — mobility as it actually
    happened, before the sampling noise of positions and discs.
    """
    labels = _site_area_labels(result, areas, radius_km)
    site_areas = labels[result.site_indices]
    corpus = result.corpus
    n = len(areas)
    matrix = np.zeros((n, n), dtype=np.int64)
    if len(corpus) >= 2:
        same_user = corpus.user_ids[1:] == corpus.user_ids[:-1]
        src = site_areas[:-1]
        dst = site_areas[1:]
        valid = same_user & (src >= 0) & (dst >= 0) & (src != dst)
        np.add.at(matrix, (src[valid], dst[valid]), 1)
    return ODFlows(areas=tuple(areas), matrix=matrix)


@dataclass(frozen=True)
class GroundTruthResult:
    """Twitter-fitted models scored against the generator's true flows."""

    scale: Scale
    twitter_fit_quality: dict[str, ModelEvaluation]
    true_flow_quality: dict[str, ModelEvaluation]
    n_true_trips: int
    n_twitter_trips: int

    def render(self) -> str:
        """Per-model: fit quality on Twitter flows vs accuracy on truth."""
        lines = [
            "Ground-truth validation of the paper's census-prediction proposal",
            f"scale={self.scale.value}: {self.n_twitter_trips} Twitter transitions "
            f"observed, {self.n_true_trips} true trips reconstructed",
            f"{'model':<16s}{'r (fit on Twitter)':>22s}{'r (vs true flows)':>22s}",
        ]
        for name, twitter_eval in self.twitter_fit_quality.items():
            truth_eval = self.true_flow_quality[name]
            lines.append(
                f"{name:<16s}{twitter_eval.pearson_r:>22.3f}{truth_eval.pearson_r:>22.3f}"
            )
        gravity = self.true_flow_quality.get("Gravity 2Param")
        if gravity is not None:
            verdict = "SUPPORTED" if gravity.pearson_r > 0.6 else "NOT SUPPORTED"
            lines.append(
                f"Proposal (census-driven gravity predicts real mobility): {verdict}"
            )
        return "\n".join(lines)


def run_ground_truth_validation(
    result: GenerationResult, scale: Scale = Scale.NATIONAL
) -> GroundTruthResult:
    """Fit on Twitter flows, score against the generator's true flows."""
    areas = areas_for_scale(scale)
    radius = search_radius_km(scale)
    context = ExperimentContext(result.corpus)
    twitter_flows = context.flows(scale)
    twitter_pairs = twitter_flows.pairs()
    truth = true_area_flows(result, areas, radius)
    truth_pairs = truth.pairs()

    models = {
        "Gravity 4Param": GravityModel(4),
        "Gravity 2Param": GravityModel(2),
        "Radiation": RadiationModel.from_flows(twitter_flows),
    }
    twitter_quality: dict[str, ModelEvaluation] = {}
    truth_quality: dict[str, ModelEvaluation] = {}
    for name, model in models.items():
        fitted = model.fit(twitter_pairs)
        twitter_quality[name] = evaluate_fitted(fitted, twitter_pairs)
        # Rescale predictions to the true-flow volume: the Twitter C
        # absorbs the sampling rate, which differs from true trips by a
        # constant the proposal does not claim to know.
        predictions = fitted.predict(truth_pairs)
        scale_factor = truth_pairs.flow.sum() / max(predictions.sum(), 1e-12)
        rescaled = _with_estimates(truth_pairs, predictions * scale_factor)
        truth_quality[name] = rescaled
    return GroundTruthResult(
        scale=scale,
        twitter_fit_quality=twitter_quality,
        true_flow_quality=truth_quality,
        n_true_trips=truth.total_trips,
        n_twitter_trips=twitter_flows.total_trips,
    )


def _with_estimates(pairs: ODPairs, estimates: np.ndarray) -> ModelEvaluation:
    """Score raw estimate arrays against a pair set's observed flows."""
    from repro.stats.correlation import pearson
    from repro.stats.metrics import (
        common_part_of_commuters,
        hit_rate,
        log_rmse,
        max_log_error,
        underestimation_fraction,
    )

    observed = pairs.flow
    correlation = pearson(estimates, observed)
    return ModelEvaluation(
        model_name="(rescaled)",
        observed=observed,
        estimated=estimates,
        pearson_r=correlation.r,
        pearson_p=correlation.p_value,
        hit_rate_50=hit_rate(observed, estimates),
        log_rmse=log_rmse(observed, estimates),
        max_log_error=max_log_error(observed, estimates),
        cpc=common_part_of_commuters(observed, estimates),
        underestimation=underestimation_fraction(observed, estimates),
    )
