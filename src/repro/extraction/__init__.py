"""Measurement pipelines: from a tweet corpus to the paper's quantities.

``population``
    ε-radius extraction of tweet counts and unique-user counts around
    area centres (Section III / Fig 3).
``mobility``
    Consecutive-tweet-pair origin–destination flow extraction
    (Section IV / Fig 4).
``dynamics``
    Tweeting-dynamics distributions: tweets per user and inter-tweet
    waiting times (Section II / Fig 2, Table I).
``trajectories``
    Per-user spatial trajectories, displacement distributions and radius
    of gyration (supporting analysis).
"""

from repro.extraction.dynamics import (
    burstiness_coefficient,
    memory_coefficient,
    tweets_per_user_distribution,
    waiting_time_distribution,
)
from repro.extraction.homes import (
    HomeLocations,
    detect_home_locations,
    home_based_population,
)
from repro.extraction.mobility import ODFlows, extract_od_flows
from repro.extraction.od_time import flow_stability, periodic_flows
from repro.extraction.population import (
    AreaObservation,
    assign_tweets_to_areas,
    extract_area_observations,
)
from repro.extraction.privacy import KAnonymityReport, k_anonymity_report
from repro.extraction.trajectories import (
    Trajectory,
    displacement_distribution,
    radius_of_gyration,
    user_trajectory,
)
from repro.extraction.visitation import (
    exploration_curve,
    return_fraction,
    visitation_zipf,
)

__all__ = [
    "AreaObservation",
    "HomeLocations",
    "KAnonymityReport",
    "ODFlows",
    "Trajectory",
    "assign_tweets_to_areas",
    "burstiness_coefficient",
    "detect_home_locations",
    "displacement_distribution",
    "exploration_curve",
    "extract_area_observations",
    "extract_od_flows",
    "flow_stability",
    "home_based_population",
    "k_anonymity_report",
    "memory_coefficient",
    "periodic_flows",
    "radius_of_gyration",
    "return_fraction",
    "tweets_per_user_distribution",
    "user_trajectory",
    "visitation_zipf",
    "waiting_time_distribution",
]
