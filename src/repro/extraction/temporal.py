"""Temporal activity profiles: hourly and weekly rhythms.

Supporting analysis for the "responsive, near-real-time" framing: a
forecasting system must know the normal daily and weekly rhythm of the
stream to tell a circadian dip from a genuine mobility change.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.corpus import TweetCorpus

DAY_SECONDS = 86_400.0
WEEK_SECONDS = 7 * DAY_SECONDS


@dataclass(frozen=True)
class ActivityProfile:
    """A periodic activity histogram (hourly or day-of-week)."""

    bin_labels: tuple[str, ...]
    counts: np.ndarray

    @property
    def fractions(self) -> np.ndarray:
        """Counts normalised to sum to 1 (zeros if empty)."""
        total = self.counts.sum()
        if total == 0:
            return np.zeros_like(self.counts, dtype=np.float64)
        return self.counts / total

    @property
    def peak_label(self) -> str:
        """Label of the busiest bin."""
        return self.bin_labels[int(np.argmax(self.counts))]

    def relative_amplitude(self) -> float:
        """(max - min) / mean of the bin counts; 0 for a flat profile."""
        if self.counts.sum() == 0:
            return 0.0
        mean = self.counts.mean()
        return float((self.counts.max() - self.counts.min()) / mean)

    def render(self, width: int = 40) -> str:
        """A labelled horizontal bar chart."""
        top = max(int(self.counts.max()), 1)
        lines = []
        for label, count in zip(self.bin_labels, self.counts):
            bar = "#" * int(round(count / top * width))
            lines.append(f"  {label:>9s} {bar} {int(count)}")
        return "\n".join(lines)


def hourly_profile(
    corpus: TweetCorpus, epoch: float | None = None, utc_offset_hours: float = 0.0
) -> ActivityProfile:
    """Tweet counts by hour of day.

    ``epoch`` anchors day boundaries (defaults to the corpus's first
    timestamp floored to a day); ``utc_offset_hours`` shifts into local
    time.
    """
    if len(corpus) == 0:
        return ActivityProfile(
            bin_labels=tuple(f"{h:02d}:00" for h in range(24)),
            counts=np.zeros(24, dtype=np.int64),
        )
    if epoch is None:
        epoch = float(np.floor(corpus.timestamps.min() / DAY_SECONDS) * DAY_SECONDS)
    local = corpus.timestamps - epoch + utc_offset_hours * 3600.0
    hours = np.floor((local % DAY_SECONDS) / 3600.0).astype(np.int64) % 24
    counts = np.bincount(hours, minlength=24)
    return ActivityProfile(
        bin_labels=tuple(f"{h:02d}:00" for h in range(24)), counts=counts
    )


DAY_NAMES = ("Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun")


def weekly_profile(
    corpus: TweetCorpus, epoch: float | None = None, epoch_weekday: int = 0
) -> ActivityProfile:
    """Tweet counts by day of week.

    ``epoch`` is a timestamp known to fall on ``epoch_weekday``
    (0 = Monday); defaults to the corpus start treated as a Monday,
    which preserves *shape* even when absolute weekday labels are
    arbitrary for synthetic data.
    """
    if not (0 <= epoch_weekday < 7):
        raise ValueError("epoch_weekday must be 0..6")
    if len(corpus) == 0:
        return ActivityProfile(bin_labels=DAY_NAMES, counts=np.zeros(7, dtype=np.int64))
    if epoch is None:
        epoch = float(np.floor(corpus.timestamps.min() / DAY_SECONDS) * DAY_SECONDS)
    days = np.floor((corpus.timestamps - epoch) / DAY_SECONDS).astype(np.int64)
    weekday = (days + epoch_weekday) % 7
    counts = np.bincount(weekday, minlength=7)
    return ActivityProfile(bin_labels=DAY_NAMES, counts=counts)


def day_night_ratio(
    corpus: TweetCorpus,
    day_start_hour: int = 7,
    day_end_hour: int = 23,
    utc_offset_hours: float = 0.0,
) -> float:
    """Per-hour daytime activity over per-hour nighttime activity.

    1.0 means no circadian structure; real Twitter streams sit well
    above 2.  Returns ``inf`` when the night bins are empty.
    """
    if not (0 <= day_start_hour < day_end_hour <= 24):
        raise ValueError("need 0 <= day_start < day_end <= 24")
    profile = hourly_profile(corpus, utc_offset_hours=utc_offset_hours)
    day_hours = range(day_start_hour, day_end_hour)
    night_hours = [h for h in range(24) if h not in day_hours]
    day_rate = profile.counts[list(day_hours)].mean()
    night_rate = profile.counts[night_hours].mean()
    if night_rate == 0:
        return float("inf")
    return float(day_rate / night_rate)
