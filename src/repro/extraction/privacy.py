"""k-anonymity auditing of area-level releases.

A responsible release pipeline (see :mod:`repro.data.anonymize` for the
pseudonymisation and coarsening half) must also check what it is about
to *publish*: an area whose count covers fewer than ``k`` distinct
users is a re-identification risk and must be suppressed.  The check
needs the ε-radius unique-user extraction, so it lives here in the
extraction layer rather than with the record-level transforms in
``repro.data`` — data-layer code never imports upward into extraction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.data.corpus import TweetCorpus
from repro.data.gazetteer import Area
from repro.extraction.population import extract_area_observations


@dataclass(frozen=True)
class KAnonymityReport:
    """Which per-area user counts are publishable at anonymity level k."""

    k: int
    area_names: tuple[str, ...]
    user_counts: np.ndarray
    publishable: np.ndarray

    @property
    def n_suppressed(self) -> int:
        """Areas whose counts must be suppressed (fewer than k users)."""
        return int((~self.publishable).sum())

    def render(self) -> str:
        """One line per area with its verdict."""
        lines = [f"k-anonymity report (k={self.k}):"]
        for name, count, ok in zip(self.area_names, self.user_counts, self.publishable):
            verdict = "ok" if ok else "SUPPRESS"
            lines.append(f"  {name:<22s} {int(count):>8d} users  {verdict}")
        lines.append(f"  -> {self.n_suppressed} of {len(self.area_names)} suppressed")
        return "\n".join(lines)


def k_anonymity_report(
    corpus: TweetCorpus, areas: Sequence[Area], radius_km: float, k: int = 10
) -> KAnonymityReport:
    """Check each area's unique-user count against an anonymity floor."""
    if k < 1:
        raise ValueError("k must be >= 1")
    observations = extract_area_observations(corpus, areas, radius_km)
    counts = np.array([o.n_users for o in observations], dtype=np.int64)
    return KAnonymityReport(
        k=k,
        area_names=tuple(a.name for a in areas),
        user_counts=counts,
        publishable=counts >= k,
    )
