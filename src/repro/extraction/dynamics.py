"""Tweeting-dynamics distributions (Section II / Fig 2 of the paper).

Fig 2 plots, on log-log axes, the probability distribution of (a) the
number of tweets per user and (b) the waiting time between a user's
consecutive tweets.  Both are produced here as logarithmically binned
empirical PDFs, the standard way to render heavy-tailed histograms.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.corpus import TweetCorpus
from repro.stats.binning import log_binned_pdf


@dataclass(frozen=True)
class EmpiricalDistribution:
    """A log-binned empirical PDF plus the raw sample it came from.

    ``bin_centers`` and ``pdf`` hold only the non-empty bins, ready to
    plot on log-log axes; ``raw`` is the underlying sample for any
    further analysis (CCDF, MLE tail fits, moments).
    """

    name: str
    raw: np.ndarray
    bin_centers: np.ndarray
    pdf: np.ndarray

    @property
    def decades_spanned(self) -> float:
        """How many decades the positive sample covers (Fig 2 spans >= 8)."""
        positive = self.raw[self.raw > 0]
        if positive.size == 0:
            return 0.0
        return float(np.log10(positive.max() / positive.min()))

    def mean(self) -> float:
        """Mean of the raw sample."""
        return float(self.raw.mean()) if self.raw.size else 0.0


def tweets_per_user_distribution(
    corpus: TweetCorpus, bins_per_decade: int = 4
) -> EmpiricalDistribution:
    """Fig 2(a): distribution of the number of tweets per user."""
    counts = corpus.tweets_per_user().astype(np.float64)
    centers, pdf = log_binned_pdf(counts, bins_per_decade=bins_per_decade)
    return EmpiricalDistribution(
        name="tweets_per_user", raw=counts, bin_centers=centers, pdf=pdf
    )


def waiting_time_distribution(
    corpus: TweetCorpus, bins_per_decade: int = 4
) -> EmpiricalDistribution:
    """Fig 2(b): distribution of inter-tweet waiting times (seconds).

    Zero waiting times (same-timestamp pairs) cannot enter a log-binned
    PDF and are dropped, mirroring the paper's log-log plot domain.
    """
    waits = corpus.waiting_times_seconds()
    waits = waits[waits > 0]
    centers, pdf = log_binned_pdf(waits, bins_per_decade=bins_per_decade)
    return EmpiricalDistribution(
        name="waiting_time_seconds", raw=waits, bin_centers=centers, pdf=pdf
    )


def burstiness_coefficient(waits: np.ndarray) -> float:
    """Goh–Barabási burstiness ``B = (σ - μ) / (σ + μ)`` of a wait sample.

    ``B = -1`` for a perfectly regular signal, 0 for a Poisson process,
    and ``B → 1`` for extreme burstiness.  The paper attributes Fig 2(b)'s
    heterogeneity to bursty human dynamics (its reference [11]); this
    coefficient makes the claim checkable.
    """
    waits = np.asarray(waits, dtype=np.float64)
    waits = waits[waits > 0]
    if waits.size < 2:
        return 0.0
    mean = waits.mean()
    std = waits.std()
    if std + mean == 0.0:
        return 0.0
    return float((std - mean) / (std + mean))


def memory_coefficient(corpus: TweetCorpus) -> float:
    """Goh–Barabási memory ``M``: correlation of consecutive wait pairs.

    Computed over pairs of *adjacent* waiting times within one user's
    sequence, pooled corpus-wide.  ``M > 0`` means long waits follow
    long waits (sessions and silences); 0 means no memory.
    """
    if len(corpus) < 3:
        return 0.0
    deltas = np.diff(corpus.timestamps)
    same_user = corpus.user_ids[1:] == corpus.user_ids[:-1]
    # Adjacent wait pairs require three consecutive same-user tweets.
    pair_valid = same_user[1:] & same_user[:-1]
    first = deltas[:-1][pair_valid]
    second = deltas[1:][pair_valid]
    positive = (first > 0) & (second > 0)
    first = first[positive]
    second = second[positive]
    if first.size < 3:
        return 0.0
    first_centered = first - first.mean()
    second_centered = second - second.mean()
    denom = np.sqrt((first_centered**2).sum() * (second_centered**2).sum())
    if denom == 0.0:
        return 0.0
    return float((first_centered * second_centered).sum() / denom)
