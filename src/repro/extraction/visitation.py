"""Visitation statistics: exploration, returns, and place popularity.

Classic individual-mobility diagnostics (González et al. 2008; Song et
al. 2010), applied to the tweet stream:

* **return fraction** — how many consecutive-tweet moves return to an
  already-visited place (the generator's ``trip_return_bias`` should be
  recoverable);
* **place-frequency Zipf** — a user's k-th most visited place receives
  a frequency ``f_k ∝ k^-zeta``;
* **exploration curve** — distinct places visited as a function of
  tweets posted, S(n) ∝ n^mu with mu < 1 (preferential return).

All operate on rounded geo-tags, the same "place" notion Table I's
locations-per-user column uses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.corpus import TweetCorpus


def _place_codes(corpus: TweetCorpus, round_decimals: int) -> np.ndarray:
    """An integer place id per tweet (rounded lat/lon pairs)."""
    lats = np.round(corpus.lats, round_decimals)
    lons = np.round(corpus.lons, round_decimals)
    pairs = np.stack([lats, lons], axis=1)
    _unique, codes = np.unique(pairs, axis=0, return_inverse=True)
    return codes


def return_fraction(corpus: TweetCorpus, round_decimals: int = 3) -> float:
    """Fraction of place *changes* that land on an already-visited place.

    Consecutive same-place tweets are not moves; of the rest, a move is
    a "return" when its destination already appears in the user's
    history.  High values signal the commute-and-return behaviour the
    generator's ``trip_return_bias`` injects.
    """
    codes = _place_codes(corpus, round_decimals)
    returns = 0
    moves = 0
    for user_id in corpus.unique_users:
        rows = corpus.user_slice(int(user_id))
        user_codes = codes[rows]
        seen: set[int] = set()
        previous = None
        for code in user_codes:
            code = int(code)
            if previous is not None and code != previous:
                moves += 1
                if code in seen:
                    returns += 1
            seen.add(code)
            previous = code
    if moves == 0:
        return 0.0
    return returns / moves


@dataclass(frozen=True)
class VisitationZipf:
    """Average visit share of the k-th favourite place, with a tail fit."""

    ranks: np.ndarray
    mean_share: np.ndarray
    zipf_exponent: float
    n_users: int


def visitation_zipf(
    corpus: TweetCorpus,
    max_rank: int = 10,
    min_tweets: int = 10,
    round_decimals: int = 3,
) -> VisitationZipf:
    """Mean visit share by place rank, over sufficiently active users.

    The exponent is a least-squares slope of ``log share`` on
    ``log rank``; González et al. report ζ ≈ 1.2 for phone users.
    """
    if max_rank < 2:
        raise ValueError("need max_rank >= 2")
    codes = _place_codes(corpus, round_decimals)
    shares = np.zeros(max_rank)
    counts = np.zeros(max_rank)
    n_users = 0
    for user_id in corpus.unique_users:
        rows = corpus.user_slice(int(user_id))
        if rows.stop - rows.start < min_tweets:
            continue
        n_users += 1
        _places, place_counts = np.unique(codes[rows], return_counts=True)
        ordered = np.sort(place_counts)[::-1]
        total = ordered.sum()
        top = ordered[:max_rank]
        shares[: top.size] += top / total
        counts[: top.size] += 1
    if n_users == 0:
        return VisitationZipf(
            ranks=np.arange(1, max_rank + 1),
            mean_share=np.zeros(max_rank),
            zipf_exponent=0.0,
            n_users=0,
        )
    occupied = counts > 0
    mean_share = np.zeros(max_rank)
    mean_share[occupied] = shares[occupied] / counts[occupied]
    ranks = np.arange(1, max_rank + 1)
    keep = mean_share > 0
    if keep.sum() >= 2:
        slope, _intercept = np.polyfit(
            np.log(ranks[keep]), np.log(mean_share[keep]), deg=1
        )
        exponent = float(-slope)
    else:
        exponent = 0.0
    return VisitationZipf(
        ranks=ranks, mean_share=mean_share, zipf_exponent=exponent, n_users=n_users
    )


@dataclass(frozen=True)
class ExplorationCurve:
    """Mean distinct places after n tweets, with a sublinearity exponent."""

    n_tweets: np.ndarray
    mean_distinct_places: np.ndarray
    growth_exponent: float


def exploration_curve(
    corpus: TweetCorpus,
    checkpoints: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64),
    round_decimals: int = 3,
) -> ExplorationCurve:
    """S(n): average distinct places seen within a user's first n tweets.

    The growth exponent is the log-log slope across checkpoints; values
    well below 1 indicate preferential return (users mostly revisit).
    """
    codes = _place_codes(corpus, round_decimals)
    checkpoints_array = np.array(sorted(checkpoints))
    sums = np.zeros(checkpoints_array.size)
    counts = np.zeros(checkpoints_array.size)
    for user_id in corpus.unique_users:
        rows = corpus.user_slice(int(user_id))
        user_codes = codes[rows]
        seen: set[int] = set()
        distinct_at = np.empty(user_codes.size, dtype=np.int64)
        for i, code in enumerate(user_codes):
            seen.add(int(code))
            distinct_at[i] = len(seen)
        for j, checkpoint in enumerate(checkpoints_array):
            if user_codes.size >= checkpoint:
                sums[j] += distinct_at[checkpoint - 1]
                counts[j] += 1
    occupied = counts > 0
    means = np.zeros(checkpoints_array.size)
    means[occupied] = sums[occupied] / counts[occupied]
    keep = occupied & (means > 0) & (checkpoints_array > 1)
    if keep.sum() >= 2:
        slope, _intercept = np.polyfit(
            np.log(checkpoints_array[keep]), np.log(means[keep]), deg=1
        )
        exponent = float(slope)
    else:
        exponent = 0.0
    return ExplorationCurve(
        n_tweets=checkpoints_array,
        mean_distinct_places=means,
        growth_exponent=exponent,
    )
