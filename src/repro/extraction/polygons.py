"""Polygon-based extraction: discs replaced by administrative shapes.

The paper's ε-disc extraction is a proxy for "the area around the
centre".  Real deployments have boundary polygons; this module runs the
same population and labelling pipelines over arbitrary polygons so the
two approaches can be compared (ablation A11).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.data.corpus import TweetCorpus
from repro.data.gazetteer import Area
from repro.geo.polygon import Polygon, regular_polygon


@dataclass(frozen=True)
class PolygonArea:
    """A study area with an explicit boundary polygon."""

    area: Area
    polygon: Polygon


def hexagon_areas(
    areas: Sequence[Area], circumradius_km: float
) -> list[PolygonArea]:
    """Hexagonal cells of the given circumradius around each area centre.

    The hexagon inscribed-circle radius is ``circumradius * sqrt(3)/2``,
    so a hexagon of circumradius ε covers ~83% of the ε-disc — close
    enough for a like-for-like comparison with disc extraction.
    """
    if circumradius_km <= 0:
        raise ValueError("circumradius must be positive")
    return [
        PolygonArea(
            area=area,
            polygon=regular_polygon(area.center, circumradius_km, n_vertices=6),
        )
        for area in areas
    ]


@dataclass(frozen=True)
class PolygonObservation:
    """Tweets and unique users inside one polygon."""

    area: Area
    n_tweets: int
    n_users: int

    @property
    def census_population(self) -> int:
        """The area's census population from the gazetteer."""
        return self.area.population


def extract_polygon_observations(
    corpus: TweetCorpus, polygon_areas: Sequence[PolygonArea]
) -> list[PolygonObservation]:
    """Count tweets and unique users inside each polygon."""
    observations = []
    for item in polygon_areas:
        inside = item.polygon.contains_mask(corpus.lats, corpus.lons)
        users = np.unique(corpus.user_ids[inside])
        observations.append(
            PolygonObservation(
                area=item.area,
                n_tweets=int(inside.sum()),
                n_users=int(users.size),
            )
        )
    return observations


def assign_tweets_to_polygons(
    corpus: TweetCorpus, polygon_areas: Sequence[PolygonArea]
) -> np.ndarray:
    """Per-tweet polygon index (-1 outside all polygons).

    Overlapping polygons are resolved in favour of the one whose
    centroid is nearest (mirroring the disc resolver).
    """
    labels = np.full(len(corpus), -1, dtype=np.int64)
    best_distance = np.full(len(corpus), np.inf)
    from repro.geo.distance import points_to_point_km

    for index, item in enumerate(polygon_areas):
        inside = item.polygon.contains_mask(corpus.lats, corpus.lons)
        rows = np.nonzero(inside)[0]
        if rows.size == 0:
            continue
        distances = points_to_point_km(
            corpus.lats[rows], corpus.lons[rows], item.area.center
        )
        closer = distances < best_distance[rows]
        winners = rows[closer]
        labels[winners] = index
        best_distance[winners] = distances[closer]
    return labels
