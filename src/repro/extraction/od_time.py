"""Time-resolved OD flows: monthly mobility matrices and their stability.

A responsive forecaster needs to know how stable the mobility structure
is month to month — if December's matrix looked nothing like November's,
fitting on last month would be useless.  This module slices a corpus
into fixed-length periods, extracts an OD matrix per period, and
measures pairwise structural stability with the common part of
commuters (CPC).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.data.corpus import TweetCorpus
from repro.data.gazetteer import Area
from repro.extraction.mobility import ODFlows, extract_od_flows
from repro.extraction.population import assign_tweets_to_areas
from repro.stats.metrics import common_part_of_commuters

MONTH_SECONDS = 30 * 86_400.0


@dataclass(frozen=True)
class PeriodFlows:
    """OD flows for one time slice."""

    start_ts: float
    end_ts: float
    flows: ODFlows

    @property
    def label(self) -> str:
        """A compact period label (days since the first slice's epoch)."""
        return f"[{self.start_ts:.0f}, {self.end_ts:.0f})"


def periodic_flows(
    corpus: TweetCorpus,
    areas: Sequence[Area],
    radius_km: float,
    period_seconds: float = MONTH_SECONDS,
) -> list[PeriodFlows]:
    """One OD matrix per fixed-length period covering the corpus span.

    Transitions are attributed to the period of their *second* tweet (a
    pair straddling a boundary counts where it completes); labels are
    computed once over the full corpus so periods share one assignment.
    """
    if period_seconds <= 0:
        raise ValueError("period must be positive")
    if len(corpus) == 0:
        return []
    labels = assign_tweets_to_areas(corpus, areas, radius_km)
    start = float(corpus.timestamps.min())
    end = float(corpus.timestamps.max())
    periods = []
    period_start = start
    while period_start <= end:
        period_end = period_start + period_seconds
        mask = (corpus.timestamps >= period_start) & (corpus.timestamps < period_end)
        # Keep full per-user adjacency by masking labels instead of rows:
        # tweets outside the period get label -1, so only pairs whose
        # second tweet is inside contribute — but the first tweet of a
        # pair may precede the window, so widen the source side.
        window_labels = np.where(mask, labels, -1)
        # Allow a pair whose *second* tweet is inside the window even if
        # the first is before it, by restoring the label of any tweet
        # immediately preceding an in-window same-user tweet.
        if len(corpus) >= 2:
            same_user = corpus.user_ids[1:] == corpus.user_ids[:-1]
            predecessor_of_inside = np.concatenate([same_user & mask[1:], [False]])
            window_labels = np.where(predecessor_of_inside, labels, window_labels)
        flows = extract_od_flows(corpus, window_labels, areas)
        periods.append(
            PeriodFlows(start_ts=period_start, end_ts=period_end, flows=flows)
        )
        period_start = period_end
    return periods


@dataclass(frozen=True)
class StabilityResult:
    """Pairwise CPC between consecutive periods."""

    periods: tuple[PeriodFlows, ...]
    consecutive_cpc: np.ndarray

    @property
    def mean_cpc(self) -> float:
        """Mean structural overlap between consecutive months."""
        return float(self.consecutive_cpc.mean()) if self.consecutive_cpc.size else 0.0

    def render(self) -> str:
        """Per-transition CPC plus the mean."""
        lines = ["Month-to-month mobility stability (CPC of consecutive periods):"]
        for index, cpc in enumerate(self.consecutive_cpc):
            trips_a = self.periods[index].flows.total_trips
            trips_b = self.periods[index + 1].flows.total_trips
            lines.append(
                f"  period {index} -> {index + 1}: CPC={cpc:.3f} "
                f"({trips_a} vs {trips_b} trips)"
            )
        lines.append(f"  mean consecutive CPC: {self.mean_cpc:.3f}")
        return "\n".join(lines)


def flow_stability(
    corpus: TweetCorpus,
    areas: Sequence[Area],
    radius_km: float,
    period_seconds: float = MONTH_SECONDS,
) -> StabilityResult:
    """CPC between consecutive periods' OD matrices.

    Periods with no trips are dropped before the comparison (a CPC
    against an empty matrix is always 0 and says nothing about
    structure).
    """
    periods = [
        p
        for p in periodic_flows(corpus, areas, radius_km, period_seconds)
        if p.flows.total_trips > 0
    ]
    if len(periods) < 2:
        return StabilityResult(periods=tuple(periods), consecutive_cpc=np.empty(0))
    cpcs = np.empty(len(periods) - 1)
    for i in range(len(periods) - 1):
        a = periods[i].flows.matrix.astype(np.float64).ravel()
        b = periods[i + 1].flows.matrix.astype(np.float64).ravel()
        cpcs[i] = common_part_of_commuters(a, b)
    return StabilityResult(periods=tuple(periods), consecutive_cpc=cpcs)
