"""Origin–destination flow extraction (Section IV of the paper).

The paper extracts mobility "by counting how many pairs of consecutive
Tweets appear first at the source area and then the destination area".
Given the per-tweet area labels from
:func:`repro.extraction.population.assign_tweets_to_areas`, this module
walks each user's chronological tweet sequence and increments the flow
``T[source, destination]`` for every consecutive pair whose two tweets
carry different area labels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro import obs
from repro.core.accumulate import od_matrix_from_labels
from repro.data.corpus import TweetCorpus
from repro.data.gazetteer import Area
from repro.geo.distance import pairwise_distance_matrix


@dataclass(frozen=True)
class ODFlows:
    """An origin–destination flow matrix over a set of study areas.

    ``matrix[i, j]`` counts observed transitions from area ``i`` to area
    ``j`` (diagonal is zero by construction: a pair must change area to
    count as a trip).
    """

    areas: tuple[Area, ...]
    matrix: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.areas)
        if self.matrix.shape != (n, n):
            raise ValueError(f"matrix shape {self.matrix.shape} != ({n}, {n})")

    @property
    def n_areas(self) -> int:
        """Number of study areas."""
        return len(self.areas)

    @property
    def total_trips(self) -> int:
        """Total observed inter-area transitions."""
        return int(self.matrix.sum())

    def populations(self) -> np.ndarray:
        """Census populations aligned with the matrix axes."""
        return np.array([a.population for a in self.areas], dtype=np.float64)

    def distance_matrix_km(self) -> np.ndarray:
        """Pairwise haversine distances between area centres."""
        return pairwise_distance_matrix([a.center for a in self.areas])

    def pairs(self, min_flow: int = 1) -> "ODPairs":
        """Flatten to the per-pair arrays the models are fitted on.

        Only off-diagonal pairs with flow >= ``min_flow`` are returned
        (models are fitted in log space, so zero flows cannot enter the
        fit — exactly as in the paper's least-squares-after-logarithm
        procedure).
        """
        if min_flow < 0:
            raise ValueError(f"min_flow must be non-negative, got {min_flow}")
        n = self.n_areas
        populations = self.populations()
        distances = self.distance_matrix_km()
        source, dest = np.nonzero(
            (self.matrix >= max(min_flow, 1)) & ~np.eye(n, dtype=bool)
        )
        obs.counter("extraction.od_pairs_built", int(source.size))
        return ODPairs(
            source=source,
            dest=dest,
            m=populations[source],
            n=populations[dest],
            d_km=distances[source, dest],
            flow=self.matrix[source, dest].astype(np.float64),
        )


@dataclass(frozen=True)
class ODPairs:
    """Per-pair fitting arrays: masses, distance and observed flow.

    ``m`` is the source population, ``n`` the destination population,
    ``d_km`` the centre distance and ``flow`` the observed transition
    count — the (m, n, d, T) tuples that Eq 1–3 of the paper consume.
    """

    source: np.ndarray
    dest: np.ndarray
    m: np.ndarray
    n: np.ndarray
    d_km: np.ndarray
    flow: np.ndarray

    def __len__(self) -> int:
        return int(self.flow.size)


def extract_od_flows(
    corpus: TweetCorpus, area_labels: np.ndarray, areas: Sequence[Area]
) -> ODFlows:
    """Count consecutive-tweet transitions between labelled areas.

    Parameters
    ----------
    corpus:
        The (user-time sorted) corpus.
    area_labels:
        Per-tweet area index from :func:`assign_tweets_to_areas`
        (-1 = no area), aligned with the corpus rows.
    areas:
        The study areas the labels index into.
    """
    area_labels = np.asarray(area_labels)
    if area_labels.shape != corpus.user_ids.shape:
        raise ValueError("labels must align with corpus rows")
    n = len(areas)
    with obs.span("extract_od_flows", areas=n, tweets=len(corpus)) as sp:
        matrix, transitions = od_matrix_from_labels(corpus.user_ids, area_labels, n)
        sp.set(transitions=transitions)
    obs.counter("extraction.od_transitions", transitions)
    return ODFlows(areas=tuple(areas), matrix=matrix)


def symmetrize(flows: ODFlows) -> ODFlows:
    """The undirected version ``T + T^T`` of a flow matrix.

    Gravity-style analyses sometimes pool both directions; provided for
    the ablation benchmarks, not used by the core reproduction (the paper
    fits directed pairs).
    """
    return ODFlows(areas=flows.areas, matrix=flows.matrix + flows.matrix.T)
