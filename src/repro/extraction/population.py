"""ε-radius population extraction (Section III of the paper).

For each study area the paper counts the tweets and the unique users
whose geo-tags fall within a search radius ε of the area centre
(ε = 50 km national, 25 km state, 2 km metropolitan; 0.5 km in the
Fig 3(b) sensitivity check).  The unique-user count is the "Twitter
population" that Fig 3 correlates with census population.

The same radius machinery also produces a per-tweet area label for the
OD extraction of Section IV: a tweet belongs to the *nearest* area whose
ε-disc contains it, or to no area at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro import obs
from repro.data.corpus import TweetCorpus
from repro.data.gazetteer import Area
from repro.geo.index import BruteForceIndex, GridIndex


@dataclass(frozen=True, slots=True)
class AreaObservation:
    """What the corpus shows within ε of one area centre.

    ``n_users`` is the paper's "Twitter population" of the area;
    ``census_population`` is carried along for convenience.
    """

    area: Area
    radius_km: float
    n_tweets: int
    n_users: int

    @property
    def census_population(self) -> int:
        """The area's census population from the gazetteer."""
        return self.area.population


def _build_index(corpus: TweetCorpus, use_grid: bool) -> GridIndex | BruteForceIndex:
    if use_grid:
        return GridIndex(corpus.lats, corpus.lons)
    return BruteForceIndex(corpus.lats, corpus.lons)


def extract_area_observations(
    corpus: TweetCorpus,
    areas: Sequence[Area],
    radius_km: float,
    index: GridIndex | BruteForceIndex | None = None,
) -> list[AreaObservation]:
    """Count tweets and unique users within ``radius_km`` of each area.

    Parameters
    ----------
    corpus:
        The tweet corpus to measure.
    areas:
        The study areas (typically one gazetteer scale's 20 areas).
    radius_km:
        The search radius ε.
    index:
        Optional prebuilt spatial index over exactly this corpus's
        coordinates; pass one when extracting several scales from the
        same corpus to avoid rebuilding.
    """
    if radius_km <= 0:
        raise ValueError(f"radius must be positive, got {radius_km}")
    if index is None:
        index = _build_index(corpus, use_grid=len(corpus) > 2000)
    if len(index) != len(corpus):
        raise ValueError("index was built over a different corpus")
    with obs.span(
        "extract_area_observations", areas=len(areas), radius_km=radius_km
    ) as sp:
        observations = []
        matched = 0
        for area in areas:
            result = index.query_radius(area.center, radius_km)
            users_here = np.unique(corpus.user_ids[result.indices])
            matched += len(result)
            observations.append(
                AreaObservation(
                    area=area,
                    radius_km=radius_km,
                    n_tweets=len(result),
                    n_users=int(users_here.size),
                )
            )
        sp.set(tweets_matched=matched)
    obs.counter("extraction.tweets_scanned", len(corpus))
    obs.counter("extraction.area_queries", len(areas))
    return observations


def assign_tweets_to_areas(
    corpus: TweetCorpus,
    areas: Sequence[Area],
    radius_km: float,
    index: GridIndex | BruteForceIndex | None = None,
) -> np.ndarray:
    """Label each tweet with its area index, or -1 when outside every ε-disc.

    Overlapping discs (possible at national scale, where 50 km circles of
    neighbouring cities may intersect) are resolved by assigning the
    tweet to the nearest qualifying centre.
    """
    if radius_km <= 0:
        raise ValueError(f"radius must be positive, got {radius_km}")
    if index is None:
        index = _build_index(corpus, use_grid=len(corpus) > 2000)
    if len(index) != len(corpus):
        raise ValueError("index was built over a different corpus")
    with obs.span(
        "assign_tweets_to_areas", areas=len(areas), radius_km=radius_km
    ) as sp:
        labels = np.full(len(corpus), -1, dtype=np.int64)
        best_distance = np.full(len(corpus), np.inf, dtype=np.float64)
        for area_index, area in enumerate(areas):
            result = index.query_radius(area.center, radius_km)
            closer = result.distances_km < best_distance[result.indices]
            rows = result.indices[closer]
            labels[rows] = area_index
            best_distance[rows] = result.distances_km[closer]
        sp.set(labelled=int((labels >= 0).sum()))
    obs.counter("extraction.tweets_scanned", len(corpus))
    obs.counter("extraction.area_queries", len(areas))
    return labels


def twitter_population_arrays(
    observations: Sequence[AreaObservation],
) -> tuple[np.ndarray, np.ndarray]:
    """Split observations into (twitter_users, census_population) arrays.

    The pair of arrays Fig 3 scatters (before rescaling).
    """
    twitter = np.array([o.n_users for o in observations], dtype=np.float64)
    census = np.array([o.census_population for o in observations], dtype=np.float64)
    return twitter, census
