"""ε-radius population extraction (Section III of the paper).

For each study area the paper counts the tweets and the unique users
whose geo-tags fall within a search radius ε of the area centre
(ε = 50 km national, 25 km state, 2 km metropolitan; 0.5 km in the
Fig 3(b) sensitivity check).  The unique-user count is the "Twitter
population" that Fig 3 correlates with census population.

The same radius machinery also produces a per-tweet area label for the
OD extraction of Section IV: a tweet belongs to the *nearest* area whose
ε-disc contains it, or to no area at all.

The counting itself lives in the kernel layer — :mod:`repro.core.label`
— which batch, streaming and serving all share.  This module is the
batch adapter: it binds the kernels to :class:`TweetCorpus` columns and
wraps the results in the paper's artefact types.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.label import build_index, count_population, label_corpus
from repro.core.world import World
from repro.data.corpus import TweetCorpus
from repro.data.gazetteer import Area
from repro.geo.index import BruteForceIndex, GridIndex


@dataclass(frozen=True, slots=True)
class AreaObservation:
    """What the corpus shows within ε of one area centre.

    ``n_users`` is the paper's "Twitter population" of the area;
    ``census_population`` is carried along for convenience.
    """

    area: Area
    radius_km: float
    n_tweets: int
    n_users: int

    @property
    def census_population(self) -> int:
        """The area's census population from the gazetteer."""
        return self.area.population


def _as_world(areas: Sequence[Area] | World, radius_km: float) -> World:
    if isinstance(areas, World):
        return areas.with_radius(radius_km)
    return World.from_areas(areas, radius_km)


def extract_area_observations(
    corpus: TweetCorpus,
    areas: Sequence[Area] | World,
    radius_km: float,
    index: GridIndex | BruteForceIndex | None = None,
) -> list[AreaObservation]:
    """Count tweets and unique users within ``radius_km`` of each area.

    Parameters
    ----------
    corpus:
        The tweet corpus to measure.
    areas:
        The study areas (typically one gazetteer scale's 20 areas), or a
        prebuilt :class:`~repro.core.world.World` over them.
    radius_km:
        The search radius ε.
    index:
        Optional prebuilt spatial index over exactly this corpus's
        coordinates; pass one when extracting several scales from the
        same corpus to avoid rebuilding.
    """
    if radius_km <= 0:
        raise ValueError(f"radius must be positive, got {radius_km}")
    world = _as_world(areas, radius_km)
    if index is None:
        index = build_index(corpus.lats, corpus.lons)
    if len(index) != len(corpus):
        raise ValueError("index was built over a different corpus")
    tweet_counts, user_counts = count_population(
        world, corpus.lats, corpus.lons, corpus.user_ids, index=index
    )
    return [
        AreaObservation(
            area=area,
            radius_km=world.radius_km,
            n_tweets=int(tweet_counts[area_index]),
            n_users=int(user_counts[area_index]),
        )
        for area_index, area in enumerate(world.areas)
    ]


def assign_tweets_to_areas(
    corpus: TweetCorpus,
    areas: Sequence[Area] | World,
    radius_km: float,
    index: GridIndex | BruteForceIndex | None = None,
) -> np.ndarray:
    """Label each tweet with its area index, or -1 when outside every ε-disc.

    Overlapping discs (possible at national scale, where 50 km circles of
    neighbouring cities may intersect) are resolved by assigning the
    tweet to the nearest qualifying centre — the core labelling kernel's
    contract, shared bit-for-bit with the streaming path.
    """
    if radius_km <= 0:
        raise ValueError(f"radius must be positive, got {radius_km}")
    world = _as_world(areas, radius_km)
    if index is None:
        index = build_index(corpus.lats, corpus.lons)
    if len(index) != len(corpus):
        raise ValueError("index was built over a different corpus")
    return label_corpus(world, corpus.lats, corpus.lons, index=index)


def twitter_population_arrays(
    observations: Sequence[AreaObservation],
) -> tuple[np.ndarray, np.ndarray]:
    """Split observations into (twitter_users, census_population) arrays.

    The pair of arrays Fig 3 scatters (before rescaling).
    """
    twitter = np.array([o.n_users for o in observations], dtype=np.float64)
    census = np.array([o.census_population for o in observations], dtype=np.float64)
    return twitter, census
