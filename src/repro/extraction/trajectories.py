"""Per-user spatial trajectories and displacement statistics.

Supporting analysis beyond the paper's figures: jump-length
distributions and radius of gyration are the standard mobility
diagnostics (González et al. 2008) and are used by the extension
benchmarks to sanity-check the synthetic travel process.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.corpus import TweetCorpus
from repro.geo.distance import EARTH_RADIUS_KM, consecutive_distances_km


@dataclass(frozen=True)
class Trajectory:
    """One user's chronologically ordered positions."""

    user_id: int
    timestamps: np.ndarray
    lats: np.ndarray
    lons: np.ndarray

    def __len__(self) -> int:
        return int(self.timestamps.size)

    def jump_lengths_km(self) -> np.ndarray:
        """Haversine distance of each consecutive hop."""
        return consecutive_distances_km(self.lats, self.lons)

    def total_distance_km(self) -> float:
        """Sum of all hop lengths."""
        jumps = self.jump_lengths_km()
        return float(jumps.sum()) if jumps.size else 0.0


def user_trajectory(corpus: TweetCorpus, user_id: int) -> Trajectory:
    """Extract one user's trajectory from a corpus."""
    rows = corpus.user_slice(user_id)
    return Trajectory(
        user_id=user_id,
        timestamps=corpus.timestamps[rows].copy(),
        lats=corpus.lats[rows].copy(),
        lons=corpus.lons[rows].copy(),
    )


def radius_of_gyration(trajectory: Trajectory) -> float:
    """RMS distance of a trajectory's points from their centre of mass (km).

    The centre of mass is computed on the unit sphere (mean of the 3-D
    unit vectors), which is exact for any spread of points; distances
    from it use the haversine formula.
    """
    if len(trajectory) == 0:
        return 0.0
    lat_rad = np.radians(trajectory.lats)
    lon_rad = np.radians(trajectory.lons)
    x = np.cos(lat_rad) * np.cos(lon_rad)
    y = np.cos(lat_rad) * np.sin(lon_rad)
    z = np.sin(lat_rad)
    cx, cy, cz = x.mean(), y.mean(), z.mean()
    norm = np.sqrt(cx * cx + cy * cy + cz * cz)
    if norm < 1e-12:
        # Degenerate (antipodally balanced) cloud; fall back to first point.
        center_lat, center_lon = trajectory.lats[0], trajectory.lons[0]
    else:
        center_lat = np.degrees(np.arcsin(cz / norm))
        center_lon = np.degrees(np.arctan2(cy / norm, cx / norm))
    from repro.geo.distance import points_to_point_km

    dists = points_to_point_km(trajectory.lats, trajectory.lons, (center_lat, center_lon))
    return float(np.sqrt((dists**2).mean()))


def displacement_distribution(
    corpus: TweetCorpus, min_km: float = 0.001
) -> np.ndarray:
    """All per-user consecutive-tweet displacements pooled corpus-wide (km).

    Displacements below ``min_km`` (same-point re-posts) are dropped —
    they dominate raw counts because users tweet repeatedly from
    favourite points, and carry no movement information.
    """
    if len(corpus) < 2:
        return np.empty(0, dtype=np.float64)
    phi = np.radians(corpus.lats)
    dphi = np.diff(phi)
    dlmb = np.radians(np.diff(corpus.lons))
    h = np.sin(dphi / 2.0) ** 2 + np.cos(phi[:-1]) * np.cos(phi[1:]) * np.sin(dlmb / 2.0) ** 2
    np.clip(h, 0.0, 1.0, out=h)
    jumps = 2.0 * EARTH_RADIUS_KM * np.arcsin(np.sqrt(h))
    same_user = corpus.user_ids[1:] == corpus.user_ids[:-1]
    jumps = jumps[same_user]
    return jumps[jumps >= min_km]


def mean_radius_of_gyration(corpus: TweetCorpus, min_tweets: int = 2) -> float:
    """Average radius of gyration over users with enough tweets."""
    radii = []
    for user_id in corpus.unique_users:
        trajectory = user_trajectory(corpus, int(user_id))
        if len(trajectory) >= min_tweets:
            radii.append(radius_of_gyration(trajectory))
    return float(np.mean(radii)) if radii else 0.0
