"""Home-location detection and home-based population estimation.

The paper counts *unique users* inside each area's ε-disc; a user who
tweets from both Sydney and Melbourne counts in both.  The standard
refinement in the Twitter-mobility literature is to detect each user's
*home location* — their modal tweeting position — and count each user
exactly once, where they live.  This module implements that pipeline as
an alternative population estimator, used by the A6 ablation benchmark
and validated against the synthetic generator's ground-truth homes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.corpus import TweetCorpus
from repro.data.gazetteer import Area
from repro.geo.index import BruteForceIndex, GridIndex


@dataclass(frozen=True)
class HomeLocations:
    """Detected home positions, one row per user.

    ``user_ids`` is sorted ascending (the corpus's unique-user order);
    ``confidence`` is the fraction of the user's tweets posted from the
    modal position.
    """

    user_ids: np.ndarray
    lats: np.ndarray
    lons: np.ndarray
    confidence: np.ndarray

    def __len__(self) -> int:
        return int(self.user_ids.size)


def detect_home_locations(
    corpus: TweetCorpus, round_decimals: int = 3
) -> HomeLocations:
    """Each user's modal tweeting position.

    Positions are compared after rounding to ``round_decimals`` decimal
    degrees (1e-3 ≈ 110 m, neighbourhood resolution), which groups a
    user's favourite points into places; the most-visited place wins,
    with earlier-seen places breaking ties.  The returned coordinate is
    the mean of the user's *unrounded* tweets at the winning place.
    """
    n_users = corpus.n_users
    user_ids = corpus.unique_users
    home_lats = np.empty(n_users)
    home_lons = np.empty(n_users)
    confidence = np.empty(n_users)
    rounded_lats = np.round(corpus.lats, round_decimals)
    rounded_lons = np.round(corpus.lons, round_decimals)
    for i, user_id in enumerate(user_ids):
        rows = corpus.user_slice(int(user_id))
        keys = np.stack([rounded_lats[rows], rounded_lons[rows]], axis=1)
        places, inverse, counts = np.unique(
            keys, axis=0, return_inverse=True, return_counts=True
        )
        winner = int(np.argmax(counts))
        members = inverse == winner
        home_lats[i] = corpus.lats[rows][members].mean()
        home_lons[i] = corpus.lons[rows][members].mean()
        confidence[i] = counts[winner] / keys.shape[0]
    return HomeLocations(
        user_ids=user_ids.copy(),
        lats=home_lats,
        lons=home_lons,
        confidence=confidence,
    )


def home_based_population(
    homes: HomeLocations,
    areas: list[Area] | tuple[Area, ...],
    radius_km: float,
    min_confidence: float = 0.0,
) -> np.ndarray:
    """Users whose detected home falls within ε of each area centre.

    Unlike the paper's presence-based count, each user contributes to at
    most one area (the nearest one whose disc contains their home).
    ``min_confidence`` drops users whose modal place holds too small a
    share of their tweets to call it home.
    """
    if radius_km <= 0:
        raise ValueError(f"radius must be positive, got {radius_km}")
    if not (0.0 <= min_confidence <= 1.0):
        raise ValueError("min_confidence must be a probability")
    keep = homes.confidence >= min_confidence
    lats = homes.lats[keep]
    lons = homes.lons[keep]
    if lats.size > 2000:
        index: GridIndex | BruteForceIndex = GridIndex(lats, lons)
    else:
        index = BruteForceIndex(lats, lons)
    counts = np.zeros(len(areas), dtype=np.int64)
    best_distance = np.full(lats.size, np.inf)
    assignment = np.full(lats.size, -1, dtype=np.int64)
    for area_index, area in enumerate(areas):
        result = index.query_radius(area.center, radius_km)
        closer = result.distances_km < best_distance[result.indices]
        rows = result.indices[closer]
        assignment[rows] = area_index
        best_distance[rows] = result.distances_km[closer]
    for area_index in range(len(areas)):
        counts[area_index] = int((assignment == area_index).sum())
    return counts
