"""Backfill: replay a corpus artifact into summary tiles.

The live path grows tiles tweet batch by tweet batch; backfill builds
the same tiles in one vectorised pass over a corpus — the recovery
path when a summary store must cover history that streamed in before
the store existed.

The batch construction reuses the kernel layer end to end: OD labels
come from :func:`~repro.core.label.label_corpus` (the indexed batch
kernel), ε-disc membership from
:func:`~repro.core.label.membership_points`, and transition detection
is the vectorised consecutive-pair rule over the corpus's native
``(user, time)`` ordering — so a backfilled tile is **bit-identical**
to the tile the streaming path would have produced from the same
tweets (pinned in ``tests/summary``).

``summary_pipeline`` exposes the build as a cached pipeline task over
the standard corpus task, so repeated backfills of the same corpus
resolve from the artifact store without recomputation;
``repro summary backfill`` is the CLI door.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.core.label import label_corpus, membership_points
from repro.core.world import World
from repro.data.corpus import TweetCorpus
from repro.data.gazetteer import Scale
from repro.pipeline.executor import Executor, RunResult
from repro.pipeline.graph import Pipeline
from repro.pipeline.graphs import suite_pipeline
from repro.pipeline.store import ArtifactStore
from repro.pipeline.task import Task, TaskContext
from repro.summary.store import SummaryStore
from repro.summary.tiers import SummaryBucket, TimeTier, bucket_start

#: Rows of dense membership computed per chunk, bounding peak memory.
MEMBERSHIP_CHUNK = 65_536

#: Code-version tag of the tile-build task (bump to invalidate caches).
TILES_TASK_VERSION = "1"


@dataclass(frozen=True)
class TileSet:
    """The backfill artifact: minute tiles plus stream-resume state.

    ``last_label`` carries each user's final OD label so a store that
    installs the tiles can keep counting transitions across the
    backfill/live seam.
    """

    scale: str
    radius_km: float
    minutes: tuple[SummaryBucket, ...]
    watermark: float
    last_label: dict[int, int]
    n_tweets: int
    n_transitions: int

    @property
    def span(self) -> tuple[int, int] | None:
        """Covered ``[first_start, last_end)``, or ``None`` when empty."""
        if not self.minutes:
            return None
        return self.minutes[0].start, self.minutes[-1].end


def build_minute_buckets(
    world: World, corpus: TweetCorpus, index=None
) -> TileSet:
    """One vectorised pass from corpus columns to finalized minute tiles.

    The corpus's native ``(user, time)`` ordering is exactly what the
    consecutive-pair transition rule needs; population bucketing only
    needs each row's minute, so no global time sort is required.
    """
    n = len(corpus)
    with obs.span("summary.backfill", tweets=n, areas=world.n_areas):
        labels = label_corpus(world, corpus.lats, corpus.lons, index=index)
        minute_ids = (
            np.floor_divide(corpus.timestamps, TimeTier.MINUTE.span_seconds)
            .astype(np.int64)
            * TimeTier.MINUTE.span_seconds
        )
        buckets: dict[int, SummaryBucket] = {}

        def bucket_for(start: int) -> SummaryBucket:
            bucket = buckets.get(start)
            if bucket is None:
                bucket = SummaryBucket.empty(
                    TimeTier.MINUTE, int(start), world.n_areas
                )
                buckets[int(start)] = bucket
            return bucket

        # Population: each tweet counts toward every containing ε-disc,
        # attributed to its own minute.  Membership is computed in row
        # chunks to bound the dense matrix's footprint.
        for chunk_start in range(0, n, MEMBERSHIP_CHUNK):
            chunk = slice(chunk_start, min(chunk_start + MEMBERSHIP_CHUNK, n))
            membership = membership_points(
                world, corpus.lats[chunk], corpus.lons[chunk]
            )
            for offset in range(chunk.stop - chunk_start):
                row = chunk_start + offset
                bucket = bucket_for(int(minute_ids[row]))
                bucket.population.add(
                    np.nonzero(membership[offset])[0],
                    int(corpus.user_ids[row]),
                )
                bucket.n_tweets += 1

        # OD: vectorised consecutive-pair transitions, attributed to the
        # arriving tweet's minute (the same instant the streaming
        # accumulator records them at).
        n_transitions = 0
        if n >= 2:
            same_user = corpus.user_ids[1:] == corpus.user_ids[:-1]
            src = labels[:-1]
            dst = labels[1:]
            valid = same_user & (src >= 0) & (dst >= 0) & (src != dst)
            rows = np.nonzero(valid)[0]
            n_transitions = int(rows.size)
            for row in rows:
                bucket = bucket_for(int(minute_ids[row + 1]))
                bucket.od_counts[(int(src[row]), int(dst[row]))] += 1

        # Each user's final label seeds the live stream's OD position.
        last_label: dict[int, int] = {}
        if n:
            boundaries = np.nonzero(
                corpus.user_ids[1:] != corpus.user_ids[:-1]
            )[0]
            last_rows = np.append(boundaries, n - 1)
            last_label = {
                int(corpus.user_ids[row]): int(labels[row])
                for row in last_rows
            }
        watermark = float(corpus.timestamps.max()) if n else float("-inf")
    return TileSet(
        scale="custom",
        radius_km=world.radius_km,
        minutes=tuple(buckets[start] for start in sorted(buckets)),
        watermark=watermark,
        last_label=last_label,
        n_tweets=n,
        n_transitions=n_transitions,
    )


def _task_summary_tiles(ctx: TaskContext) -> TileSet:
    scale = Scale(ctx.params["scale"])
    world = World.from_scale(scale, gazetteer=ctx.params.get("gazetteer"))
    corpus = ctx.input("corpus")
    tiles = build_minute_buckets(world, corpus, index=ctx.input("index"))
    return TileSet(
        scale=scale.value,
        radius_km=tiles.radius_km,
        minutes=tiles.minutes,
        watermark=tiles.watermark,
        last_label=tiles.last_label,
        n_tweets=tiles.n_tweets,
        n_transitions=tiles.n_transitions,
    )


def summary_pipeline(
    config=None,
    corpus_path: str | None = None,
    scale: Scale = Scale.NATIONAL,
    gazetteer: str | None = None,
) -> Pipeline:
    """Corpus → index → minute tiles as a cached task DAG.

    Reuses the suite's corpus and index tasks (same cache keys, so a
    piped corpus is a hit here and vice versa) and adds the tile build,
    keyed by the corpus digest, the scale, and the gazetteer spec.
    """
    if gazetteer is None:
        gazetteer = config.gazetteer if config is not None else "legacy"
    base = suite_pipeline(config=config, corpus_path=corpus_path)
    pipeline = Pipeline([base.task("corpus"), base.task("index")])
    pipeline.add(
        Task(
            name="summary_tiles",
            fn=_task_summary_tiles,
            deps=("corpus", "index"),
            params={"scale": scale.value, "gazetteer": gazetteer},
            version=TILES_TASK_VERSION,
        )
    )
    pipeline.validate()
    return pipeline


def backfill_summary(
    store: ArtifactStore,
    summary: SummaryStore,
    config=None,
    corpus_path: str | None = None,
    scale: Scale = Scale.NATIONAL,
    jobs: int = 1,
    force: bool = False,
    gazetteer: str | None = None,
) -> tuple[TileSet, int, RunResult]:
    """Build (or cache-resolve) tiles and install them into a store.

    Returns ``(tileset, tiles_installed, run)``; after this the summary
    store answers windowed queries over the corpus span and every
    finalized tile is persisted for restart recovery.
    """
    pipeline = summary_pipeline(
        config=config, corpus_path=corpus_path, scale=scale, gazetteer=gazetteer
    )
    executor = Executor(store=store, jobs=jobs, force=force)
    run = executor.run(pipeline, targets=("summary_tiles",))
    tiles: TileSet = run.artifact("summary_tiles")
    installed = summary.install_minutes(
        tiles.minutes, tiles.watermark, last_label=tiles.last_label
    )
    return tiles, installed, run
