"""Incremental multi-resolution time-tiered summary store.

Every windowed population or flow question used to cost a rescan of the
corpus or the latest artifact run — O(corpus) per query.  This
subpackage makes it O(buckets touched): tweets ingest into minute
buckets, finalized minutes roll up into hour and day tiles, and any
``[t0, t1)`` window is answered by stitching the coarsest aligned tiles
that cover it.  Tiles persist content-addressed through the pipeline's
:class:`~repro.pipeline.store.ArtifactStore`, so a restarted service
recovers its summaries without replaying a corpus.

``tiers``
    :class:`TimeTier` (minute/hour/day), bucket-boundary semantics and
    the :class:`SummaryBucket` tile type with exact-merge rollup.
``store``
    :class:`SummaryStore`: thread-safe incremental ingest, rollup,
    persistence/recovery and the tile-stitching window query with a
    stream-time staleness contract and a monotonic version for cache
    invalidation.
``backfill``
    Vectorised corpus → tiles build, exposed as a cached pipeline task
    (``summary_pipeline``) and the ``repro summary backfill`` CLI.
"""

from repro.summary.backfill import (
    TileSet,
    backfill_summary,
    build_minute_buckets,
    summary_pipeline,
)
from repro.summary.store import (
    IngestOutcome,
    SummaryStore,
    WindowSummary,
)
from repro.summary.tiers import (
    SummaryBucket,
    TimeTier,
    bucket_start,
    window_align,
)

__all__ = [
    "IngestOutcome",
    "SummaryBucket",
    "SummaryStore",
    "TileSet",
    "TimeTier",
    "WindowSummary",
    "backfill_summary",
    "bucket_start",
    "build_minute_buckets",
    "summary_pipeline",
    "window_align",
]
