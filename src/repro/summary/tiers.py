"""Time tiers and summary tiles: the units the summary store stitches.

A **tier** is a bucketing resolution (minute, hour, day); a **tile**
(:class:`SummaryBucket`) is everything the service needs to answer a
population or flow query over one bucket of one tier:

* per-area tweet counts and the per-area *user multisets* (held as a
  :class:`~repro.core.accumulate.PopulationAccumulator`), so unique-user
  counts stay exact under any merge — tweet counts add, user sets union;
* compacted OD transition counts, keyed ``(source, dest)``.

Bucket-boundary semantics are fixed here once: a bucket covers the
half-open span ``[start, start + span)``, and a timestamp landing
exactly on a boundary belongs to the bucket *starting* there
(floor-division assignment).  OD transitions are attributed to the
bucket of the **arriving** tweet's timestamp — the same instant
:class:`~repro.core.accumulate.ODAccumulator` records and expires them
at — so tile-stitched flows over ``[t0, t1)`` equal a full-stream
replay filtered to transition timestamps in ``[t0, t1)``.

Rollup is plain merging: an hour tile is the merge of its (present)
minute tiles, a day tile the merge of its hour tiles.  Merging is
associative and order-independent for every field, which is what makes
the multi-resolution store's answers independent of which tier mix
covered a window.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable

import numpy as np

from repro.core.accumulate import PopulationAccumulator


class TimeTier(Enum):
    """A summary resolution; the value is the bucket span in seconds."""

    MINUTE = 60
    HOUR = 3600
    DAY = 86400

    @property
    def span_seconds(self) -> int:
        """Length of one bucket at this tier."""
        return self.value


#: Tiers finest-first; rollup folds each into the next.
TIER_ORDER = (TimeTier.MINUTE, TimeTier.HOUR, TimeTier.DAY)

#: Tiers coarsest-first; the query planner prefers the biggest tile.
COARSE_FIRST = tuple(reversed(TIER_ORDER))

#: Which tier each coarse tier rolls up from.
ROLLUP_SOURCE = {TimeTier.HOUR: TimeTier.MINUTE, TimeTier.DAY: TimeTier.HOUR}


def bucket_start(timestamp: float, tier: TimeTier) -> int:
    """Start of the tier bucket containing ``timestamp``.

    Floor semantics: a timestamp exactly on a boundary opens the bucket
    that starts there.  Works for negative timestamps (true floor, not
    truncation toward zero).
    """
    if not math.isfinite(timestamp):
        raise ValueError(f"timestamp must be finite, got {timestamp!r}")
    return int(math.floor(timestamp / tier.span_seconds)) * tier.span_seconds


def window_align(t0: float, t1: float) -> tuple[int, int]:
    """Snap a query window outward to minute boundaries.

    The store's finest tile is one minute, so ``[t0, t1)`` is widened to
    the smallest minute-aligned cover: ``t0`` floors, ``t1`` ceils.
    Returns the effective ``(q0, q1)``.
    """
    if not (math.isfinite(t0) and math.isfinite(t1)):
        raise ValueError(f"window bounds must be finite, got [{t0!r}, {t1!r})")
    if t1 <= t0:
        raise ValueError(f"window must satisfy t0 < t1, got [{t0}, {t1})")
    span = TimeTier.MINUTE.span_seconds
    q0 = bucket_start(t0, TimeTier.MINUTE)
    q1 = int(math.ceil(t1 / span)) * span
    return q0, q1


@dataclass
class SummaryBucket:
    """One tile: population + OD summaries over ``[start, start + span)``.

    ``population`` carries per-area tweet counts and user multisets (so
    merged tiles report exact unique users); ``od_counts`` carries
    compacted transition counts for transitions whose arriving tweet's
    timestamp falls in the bucket.  Tiles are plain picklable values —
    the artifact store persists them as-is.
    """

    tier: TimeTier
    start: int
    population: PopulationAccumulator
    od_counts: Counter = field(default_factory=Counter)
    n_tweets: int = 0

    @classmethod
    def empty(cls, tier: TimeTier, start: int, n_areas: int) -> "SummaryBucket":
        """A fresh all-zero tile."""
        return cls(
            tier=tier, start=start, population=PopulationAccumulator(n_areas)
        )

    @property
    def end(self) -> int:
        """Exclusive end of the bucket's span."""
        return self.start + self.tier.span_seconds

    @property
    def n_areas(self) -> int:
        """Number of areas the tile summarises."""
        return self.population.n_areas

    @property
    def n_transitions(self) -> int:
        """Total OD transitions recorded in the bucket."""
        return sum(self.od_counts.values())

    def flow_matrix(self) -> np.ndarray:
        """The bucket's OD counts as a dense ``(n, n)`` matrix."""
        matrix = np.zeros((self.n_areas, self.n_areas), dtype=np.int64)
        for (source, dest), count in self.od_counts.items():
            matrix[source, dest] = count
        return matrix

    def merge(self, other: "SummaryBucket") -> None:
        """Fold another tile's counts into this one (other untouched)."""
        if other.n_areas != self.n_areas:
            raise ValueError(
                f"cannot merge a {other.n_areas}-area tile into a "
                f"{self.n_areas}-area tile"
            )
        self.population.merge(other.population)
        self.od_counts.update(other.od_counts)
        self.n_tweets += other.n_tweets

    @classmethod
    def rolled_up(
        cls,
        tier: TimeTier,
        start: int,
        n_areas: int,
        children: Iterable["SummaryBucket"],
    ) -> "SummaryBucket":
        """Merge finer tiles into one coarse tile covering their span.

        Children outside ``[start, start + span)`` are rejected — a
        rollup must never smuggle counts across its own boundary.
        """
        tile = cls.empty(tier, start, n_areas)
        for child in children:
            if child.start < start or child.end > tile.end:
                raise ValueError(
                    f"child [{child.start}, {child.end}) lies outside "
                    f"rollup span [{start}, {tile.end})"
                )
            tile.merge(child)
        return tile
