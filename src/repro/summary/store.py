"""The incremental multi-resolution summary store.

:class:`SummaryStore` keeps time-bucketed population and OD summaries at
three tiers (minute → hour → day) and answers any minute-aligned
``[t0, t1)`` window query by stitching O(buckets-touched) tiles instead
of rescanning a corpus.

Lifecycle of a tile
-------------------
Tweets ingest into **open** minute buckets (time-ordered batches; the
store keeps a watermark and drops older tweets, counted).  Once the
watermark passes a minute's end the bucket **finalizes**: it becomes
immutable, is persisted content-addressed through the
:class:`~repro.pipeline.store.ArtifactStore` (when one is attached),
and is scheduled for rollup.  When every minute of an hour is behind
the watermark the present minute tiles merge into an **hour** tile;
hours merge into **day** tiles the same way.  Finer tiles are retained
— partial windows need them — so a query greedily covers its span with
the coarsest aligned tile available and falls through to finer tiers
(ultimately to "empty minute") where a coarse tile is absent.

Consistency and staleness
-------------------------
Every mutation bumps a monotonic ``version`` — the serving layer keys
its response cache on it, so a cached windowed answer can never outlive
the tiles it was computed from.  ``staleness_seconds`` on a query
result is *stream-time* staleness: how many seconds at the tail of the
requested window lie beyond the ingest watermark (0 when the window is
fully covered by ingested data).  Open buckets are included in query
answers, so freshness is bounded by ingest batching, not by rollup
cadence.

Restart recovery
----------------
:meth:`recover` reloads every persisted tile for the store's namespace
from the artifact store — no corpus replay.  Only finalized tiles were
persisted, so at most the open (sub-minute-old) tail is lost; per-user
OD positions are also reset, so the first post-restart transition of a
user straddling the restart is not counted (documented contract).
"""

from __future__ import annotations

import threading
from collections import Counter
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro import obs
from repro.core.accumulate import PopulationAccumulator
from repro.core.label import label_points, membership_points
from repro.core.world import World
from repro.data.schema import Tweet
from repro.pipeline.store import ArtifactStore
from repro.summary.tiers import (
    COARSE_FIRST,
    ROLLUP_SOURCE,
    SummaryBucket,
    TimeTier,
    bucket_start,
    window_align,
)

#: Root of every summary key in the artifact store's key index.
KEY_PREFIX = "summary"


@dataclass(frozen=True)
class IngestOutcome:
    """Result of one summary ingest batch."""

    accepted: int
    dropped_late: int
    version: int


@dataclass(frozen=True)
class WindowSummary:
    """One stitched ``[t0, t1)`` answer.

    ``t0``/``t1`` are the *effective* minute-aligned bounds;
    ``tiles_used`` maps tier name to the number of tiles of that tier
    stitched in (empty minutes touch nothing).
    """

    t0: int
    t1: int
    tweet_counts: np.ndarray
    user_counts: np.ndarray
    flow_matrix: np.ndarray
    n_tweets: int
    n_transitions: int
    buckets_touched: int
    tiles_used: Mapping[str, int]
    staleness_seconds: float
    version: int


class SummaryStore:
    """Multi-resolution time-tiered population/OD summaries over one world.

    Parameters
    ----------
    world:
        The area system every tile is aligned with.
    artifacts:
        Optional artifact store; when given, finalized tiles persist
        content-addressed under ``summary/<namespace>/...`` keys and
        :meth:`recover` restores them after a restart.
    namespace:
        Key namespace separating summary families (typically the
        gazetteer scale name) within one artifact store.

    All public methods are thread-safe (one internal mutex, the same
    single-writer discipline as :class:`~repro.serve.ingest.IngestService`).
    """

    def __init__(
        self,
        world: World,
        artifacts: ArtifactStore | None = None,
        namespace: str = "default",
    ) -> None:
        if "/" in namespace or not namespace:
            raise ValueError(f"namespace must be a non-empty path segment, got {namespace!r}")
        self.world = world
        self.namespace = namespace
        self._artifacts = artifacts
        self._lock = threading.Lock()
        self._minute_open: dict[int, SummaryBucket] = {}
        self._tiles: dict[TimeTier, dict[int, SummaryBucket]] = {
            tier: {} for tier in TimeTier
        }
        self._pending_rollup: dict[TimeTier, set[int]] = {
            tier: set() for tier in ROLLUP_SOURCE
        }
        self._last_label: dict[int, int] = {}
        self._watermark = float("-inf")
        self._version = 0
        self._accepted = 0
        self._dropped_late = 0

    # -- introspection -------------------------------------------------

    @property
    def version(self) -> int:
        """Monotonic state version; bumps on every ingest/rollup/recover."""
        with self._lock:
            return self._version

    @property
    def watermark(self) -> float:
        """Newest ingested timestamp (-inf before any data)."""
        with self._lock:
            return self._watermark

    def stats(self) -> dict:
        """Counters plus per-tier tile inventory."""
        with self._lock:
            return {
                "version": self._version,
                "watermark": (
                    self._watermark if np.isfinite(self._watermark) else None
                ),
                "accepted": self._accepted,
                "dropped_late": self._dropped_late,
                "open_minutes": len(self._minute_open),
                "tiles": {
                    tier.name.lower(): len(buckets)
                    for tier, buckets in self._tiles.items()
                },
                "persistent": self._artifacts is not None,
                "tracked_users": len(self._last_label),
            }

    # -- ingest --------------------------------------------------------

    def ingest(self, tweets: Sequence[Tweet]) -> IngestOutcome:
        """Label and ingest one batch (sorted internally by timestamp).

        Tweets behind the watermark are dropped and counted, exactly as
        at the serve ingest door — the stream contract is monotone time.
        """
        ordered = sorted(tweets, key=lambda t: t.timestamp)
        if not ordered:
            with self._lock:
                return IngestOutcome(0, 0, self._version)
        n = len(ordered)
        lats = np.fromiter((t.lat for t in ordered), np.float64, count=n)
        lons = np.fromiter((t.lon for t in ordered), np.float64, count=n)
        labels = label_points(self.world, lats, lons)
        membership = membership_points(self.world, lats, lons)
        return self.ingest_labelled(ordered, labels, membership)

    def ingest_labelled(
        self,
        ordered: Sequence[Tweet],
        labels: np.ndarray,
        membership: np.ndarray,
    ) -> IngestOutcome:
        """Ingest a time-ascending batch whose labels are precomputed.

        ``labels``/``membership`` must come from the kernel layer over
        the same rows (``label_points`` / ``membership_points``) — the
        path for callers that already labelled the batch.
        """
        with self._lock, obs.span("summary.ingest", tweets=len(ordered)):
            keep = 0
            while (
                keep < len(ordered)
                and ordered[keep].timestamp < self._watermark
            ):
                keep += 1
            dropped = keep
            for row in range(keep, len(ordered)):
                tweet = ordered[row]
                self._ingest_one(
                    tweet,
                    int(labels[row]),
                    np.nonzero(membership[row])[0],
                )
            accepted = len(ordered) - dropped
            self._accepted += accepted
            self._dropped_late += dropped
            self._advance()
            if accepted:
                self._version += 1
            return IngestOutcome(accepted, dropped, self._version)

    def _ingest_one(
        self, tweet: Tweet, label: int, area_indices: np.ndarray
    ) -> None:
        start = bucket_start(tweet.timestamp, TimeTier.MINUTE)
        bucket = self._minute_open.get(start)
        if bucket is None:
            bucket = SummaryBucket.empty(
                TimeTier.MINUTE, start, self.world.n_areas
            )
            self._minute_open[start] = bucket
        bucket.population.add(area_indices, tweet.user_id)
        bucket.n_tweets += 1
        previous = self._last_label.get(tweet.user_id, -1)
        self._last_label[tweet.user_id] = label
        if previous >= 0 and label >= 0 and previous != label:
            bucket.od_counts[(previous, label)] += 1
        self._watermark = tweet.timestamp

    # -- finalization and rollup ---------------------------------------

    def _advance(self) -> None:
        """Finalize passed minutes and roll complete hours/days up."""
        for start in sorted(self._minute_open):
            if start + TimeTier.MINUTE.span_seconds > self._watermark:
                break
            self._finalize_minute(start, self._minute_open.pop(start))
        for tier in (TimeTier.HOUR, TimeTier.DAY):
            self._rollup_tier(tier)

    def _finalize_minute(self, start: int, bucket: SummaryBucket) -> None:
        self._tiles[TimeTier.MINUTE][start] = bucket
        self._persist(bucket)
        self._pending_rollup[TimeTier.HOUR].add(
            bucket_start(start, TimeTier.HOUR)
        )

    def _rollup_tier(self, tier: TimeTier) -> None:
        source = ROLLUP_SOURCE[tier]
        span = tier.span_seconds
        for start in sorted(self._pending_rollup[tier]):
            if start + span > self._watermark:
                continue
            children = [
                child
                for child_start in range(start, start + span, source.span_seconds)
                if (child := self._tiles[source].get(child_start)) is not None
            ]
            self._pending_rollup[tier].discard(start)
            if not children:
                continue
            tile = SummaryBucket.rolled_up(
                tier, start, self.world.n_areas, children
            )
            self._tiles[tier][start] = tile
            self._persist(tile)
            if tier in ROLLUP_SOURCE.values() and tier is not TimeTier.DAY:
                self._pending_rollup[TimeTier.DAY].add(
                    bucket_start(start, TimeTier.DAY)
                )

    # -- persistence ---------------------------------------------------

    def _tile_key(self, tier: TimeTier, start: int) -> str:
        return f"{KEY_PREFIX}/{self.namespace}/{tier.name.lower()}/{start}"

    def _persist(self, bucket: SummaryBucket) -> None:
        if self._artifacts is None:
            return
        digest = self._artifacts.put(bucket)
        self._artifacts.record_key(
            self._tile_key(bucket.tier, bucket.start),
            digest,
            meta={
                "tier": bucket.tier.name.lower(),
                "start": bucket.start,
                "n_tweets": bucket.n_tweets,
                "namespace": self.namespace,
            },
        )

    def recover(self) -> int:
        """Reload every persisted tile of this namespace; returns count.

        Installs recovered tiles, advances the watermark to the newest
        recovered tile end and re-derives the rollup schedule — no
        corpus replay.  Tiles already present in memory are kept
        (recovery after partial operation is additive, and identical
        tiles are content-addressed anyway).
        """
        if self._artifacts is None:
            return 0
        prefix = f"{KEY_PREFIX}/{self.namespace}/"
        recovered = 0
        with self._lock:
            for key in self._artifacts.keys_with_prefix(prefix):
                digest = self._artifacts.lookup(key)
                if digest is None:
                    continue
                tile = self._artifacts.get(digest)
                if not isinstance(tile, SummaryBucket):
                    continue
                if tile.start in self._tiles[tile.tier]:
                    continue
                self._tiles[tile.tier][tile.start] = tile
                recovered += 1
                self._watermark = max(self._watermark, float(tile.end))
                if tile.tier in ROLLUP_SOURCE.values() or tile.tier is TimeTier.MINUTE:
                    coarser = (
                        TimeTier.HOUR
                        if tile.tier is TimeTier.MINUTE
                        else TimeTier.DAY
                    )
                    if coarser in self._pending_rollup:
                        self._pending_rollup[coarser].add(
                            bucket_start(tile.start, coarser)
                        )
            # Drop rollup slots already materialised by a recovered tile.
            for tier in self._pending_rollup:
                self._pending_rollup[tier] -= self._tiles[tier].keys()
            if recovered:
                self._advance()
                self._version += 1
        return recovered

    def flush(self) -> int:
        """Finalize and persist every open minute bucket; returns count.

        The graceful-drain hook: advances the watermark to the end of
        the newest open bucket and runs the normal finalize/rollup
        machinery, so the open (sub-minute) tail reaches the artifact
        store instead of being lost to a restart.  Consistent with the
        stream contract, tweets older than the flushed minutes arriving
        *after* the flush are dropped as late — exactly what a restart
        would have done anyway.  Idempotent: with nothing open this is
        a no-op.
        """
        with self._lock:
            if not self._minute_open:
                return 0
            flushed = len(self._minute_open)
            newest = max(self._minute_open)
            self._watermark = max(
                self._watermark,
                float(newest + TimeTier.MINUTE.span_seconds),
            )
            self._advance()
            self._version += 1
            obs.counter("summary.flushes")
            return flushed

    # -- queries -------------------------------------------------------

    def query(self, t0: float, t1: float) -> WindowSummary:
        """Stitch the tiles covering ``[t0, t1)`` into one summary.

        Bounds snap outward to minute alignment (the finest tier); the
        effective bounds are reported on the result.  Open minute
        buckets are included, so answers reflect everything ingested.
        """
        q0, q1 = window_align(t0, t1)
        minute_span = TimeTier.MINUTE.span_seconds
        plan = tuple((tier, tier.span_seconds) for tier in COARSE_FIRST)
        with self._lock, obs.span("summary.query", t0=q0, t1=q1) as sp:
            covering: list[SummaryBucket] = []
            used: Counter = Counter()
            t = q0
            while t < q1:
                step = minute_span
                bucket = None
                for tier, span in plan:
                    if t % span or t + span > q1:
                        continue
                    bucket = self._tiles[tier].get(t)
                    if bucket is None and tier is TimeTier.MINUTE:
                        bucket = self._minute_open.get(t)
                    if bucket is not None:
                        step = span
                        break
                if bucket is not None:
                    covering.append(bucket)
                    used[bucket.tier.name.lower()] += 1
                t += step
            touched = len(covering)
            if touched == 1:
                # Fast path for the aligned-window common case: read the
                # one covering tile directly, no merge allocation.
                tile = covering[0]
                tweet_counts = tile.population.tweet_counts()
                user_counts = tile.population.user_counts()
                od = tile.od_counts  # read-only below
                n_tweets = tile.n_tweets
            else:
                population = PopulationAccumulator(self.world.n_areas)
                od = Counter()
                n_tweets = 0
                for bucket in covering:
                    population.merge(bucket.population)
                    od.update(bucket.od_counts)
                    n_tweets += bucket.n_tweets
                tweet_counts = population.tweet_counts()
                user_counts = population.user_counts()
            matrix = np.zeros(
                (self.world.n_areas, self.world.n_areas), dtype=np.int64
            )
            for (source, dest), count in od.items():
                matrix[source, dest] = count
            if np.isfinite(self._watermark):
                staleness = min(
                    float(q1 - q0), max(0.0, q1 - self._watermark)
                )
            else:
                staleness = float(q1 - q0)
            sp.set(buckets=touched)
            return WindowSummary(
                t0=q0,
                t1=q1,
                tweet_counts=tweet_counts,
                user_counts=user_counts,
                flow_matrix=matrix,
                n_tweets=n_tweets,
                n_transitions=int(sum(od.values())),
                buckets_touched=touched,
                tiles_used=dict(used),
                staleness_seconds=round(staleness, 3),
                version=self._version,
            )

    # -- bulk install (backfill) ---------------------------------------

    def install_minutes(
        self,
        buckets: Sequence[SummaryBucket],
        watermark: float,
        last_label: Mapping[int, int] | None = None,
    ) -> int:
        """Install backfilled minute tiles; returns tiles installed.

        Minute tiles wholly behind ``watermark`` finalize (and persist)
        immediately; the tail minute still ahead of it stays open so
        live ingest can continue appending.  Tiles colliding with an
        existing minute (open or finalized) are skipped — re-running a
        backfill over the same span is idempotent, not double-counting.
        ``last_label`` seeds per-user OD positions for users the store
        has not seen, so the first live transition after a backfill is
        counted.
        """
        installed = 0
        with self._lock:
            for bucket in buckets:
                if bucket.tier is not TimeTier.MINUTE:
                    raise ValueError(
                        f"install_minutes got a {bucket.tier.name} tile"
                    )
                if bucket.n_areas != self.world.n_areas:
                    raise ValueError(
                        f"tile covers {bucket.n_areas} areas, world has "
                        f"{self.world.n_areas}"
                    )
                if (
                    bucket.start in self._tiles[TimeTier.MINUTE]
                    or bucket.start in self._minute_open
                ):
                    continue
                if bucket.end <= watermark:
                    self._finalize_minute(bucket.start, bucket)
                else:
                    self._minute_open[bucket.start] = bucket
                installed += 1
            self._watermark = max(self._watermark, float(watermark))
            for user_id, label in (last_label or {}).items():
                self._last_label.setdefault(user_id, label)
            self._advance()
            if installed:
                self._version += 1
        return installed
