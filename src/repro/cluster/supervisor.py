"""The pre-fork supervisor: bind once, fork N, watch, restart, drain.

:class:`ClusterSupervisor` owns every listening socket and every worker
process:

* **Bind once, fork N.**  The public socket and one private socket per
  shard are bound and listening *before* the first fork, so the full
  shard→address map is plain data every child inherits, and a restarted
  worker re-accepts on the very same sockets — no port churn, no
  rebind races.  Listeners are set non-blocking so the thundering-herd
  accept race between workers degrades to a harmless ``EAGAIN``
  (``socketserver`` swallows it and re-polls).
* **Liveness.**  Each worker holds the write end of a dedicated pipe:
  ``R`` once warm (serving starts only after warmup), then ``H`` every
  ``heartbeat_interval``.  The supervisor ``select()``s all read ends;
  a worker silent for ``liveness_timeout`` seconds is killed and
  replaced, and child exits are reaped with ``waitpid(WNOHANG)``.
* **Restart with backoff.**  A crashed worker is re-forked after an
  exponential backoff (``restart_backoff * 2^(restarts-1)``, capped),
  so a worker that dies in warmup cannot spin the host.
* **Drain.**  ``stop()`` (or SIGTERM/SIGINT via :meth:`run`) sends
  every worker SIGTERM, waits up to ``drain_timeout`` for the fleet to
  finish in-flight requests and flush summary tiles, then SIGKILLs
  stragglers and closes the sockets.

The supervisor itself serves nothing and imports no estimation state —
workers build their own apps post-fork (fork-safety: no locks, threads
or loaded models cross the fork boundary).
"""

from __future__ import annotations

import errno
import os
import select
import signal
import socket
import time
from dataclasses import dataclass, field

from repro import obs
from repro.cluster.worker import READY, worker_main
from repro.data.gazetteer import Scale
from repro.serve.app import DEFAULT_MAX_BODY_BYTES

#: accept() backlog per listener.
BACKLOG = 128


@dataclass
class ClusterConfig:
    """Everything a supervisor (and its workers) needs, fork-inheritable."""

    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 2
    cache_dir: str | None = None
    monitor_scale: Scale = Scale.NATIONAL
    gazetteer: str | None = None
    window_seconds: float = 3600.0
    poll_interval: float = 2.0
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES
    with_summary: bool = True
    heartbeat_interval: float = 1.0
    liveness_timeout: float = 15.0
    drain_timeout: float = 10.0
    restart_backoff: float = 0.5
    restart_backoff_max: float = 30.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")


@dataclass
class _WorkerState:
    """Supervisor-side bookkeeping for one shard's worker process."""

    shard: int
    pid: int = -1
    read_fd: int = -1
    ready: bool = False
    last_beat: float = 0.0
    restarts: int = 0
    restart_at: float = 0.0  # next allowed fork time (backoff)
    exits: list[int] = field(default_factory=list)


class ClusterSupervisor:
    """Own the sockets and the worker fleet for one serving cluster."""

    def __init__(self, config: ClusterConfig) -> None:
        self.config = config
        self.public_sock: socket.socket | None = None
        self.shard_socks: dict[int, socket.socket] = {}
        self.peer_addrs: dict[int, str] = {}
        self._workers: dict[int, _WorkerState] = {}
        self._running = False

    # -- properties ----------------------------------------------------

    @property
    def port(self) -> int:
        """The public port (resolved after :meth:`start` with port 0)."""
        if self.public_sock is None:
            raise RuntimeError("supervisor is not started")
        return self.public_sock.getsockname()[1]

    @property
    def shard_addresses(self) -> dict[int, str]:
        """Shard index → private base URL."""
        return dict(self.peer_addrs)

    def worker_pids(self) -> dict[int, int]:
        """Shard index → live worker pid."""
        return {s: w.pid for s, w in self._workers.items() if w.pid > 0}

    # -- socket plumbing -----------------------------------------------

    def _listen(self, port: int) -> socket.socket:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self.config.host, port))
        sock.listen(BACKLOG)
        # Non-blocking listener: when several workers wake for one
        # connection, the losers' accept() raises EAGAIN instead of
        # blocking a handler loop.  Accepted sockets are unaffected.
        sock.setblocking(False)
        return sock

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        """Bind all sockets and fork the initial fleet."""
        if self.public_sock is not None:
            raise RuntimeError("supervisor already started")
        self.public_sock = self._listen(self.config.port)
        for shard in range(self.config.workers):
            sock = self._listen(0)
            self.shard_socks[shard] = sock
            host, port = sock.getsockname()[:2]
            self.peer_addrs[shard] = f"http://{host}:{port}"
        self._running = True
        now = time.monotonic()
        for shard in range(self.config.workers):
            state = _WorkerState(shard=shard)
            self._workers[shard] = state
            self._fork_worker(state, now)
        obs.counter("cluster.starts")

    def _fork_worker(self, state: _WorkerState, now: float) -> None:
        read_fd, write_fd = os.pipe()
        pid = os.fork()
        if pid == 0:
            # Child: shed supervisor-side fds, then never return.
            os.close(read_fd)
            for shard, sock in self.shard_socks.items():
                if shard != state.shard:
                    sock.close()
            for other in self._workers.values():
                if other.read_fd >= 0 and other is not state:
                    try:
                        os.close(other.read_fd)
                    except OSError:  # repro: allow[hygiene] fd already gone
                        pass
            worker_main(
                state.shard,
                self.config,
                self.public_sock,
                self.shard_socks[state.shard],
                dict(self.peer_addrs),
                write_fd,
            )
            raise AssertionError("worker_main returned")  # pragma: no cover
        os.close(write_fd)
        state.pid = pid
        state.read_fd = read_fd
        state.ready = False
        state.last_beat = now

    def wait_ready(self, timeout: float = 30.0) -> bool:
        """Block until every worker has signalled warmup-complete."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if all(w.ready for w in self._workers.values()):
                return True
            self.step(poll=0.1)
        return all(w.ready for w in self._workers.values())

    def step(self, poll: float = 0.5) -> None:
        """One monitoring iteration: drain pipes, reap, kill, restart."""
        now = time.monotonic()
        fds = [w.read_fd for w in self._workers.values() if w.read_fd >= 0]
        readable: list[int] = []
        if fds:
            try:
                readable, _, _ = select.select(fds, [], [], poll)
            except InterruptedError:  # pragma: no cover - signal race
                readable = []
        for state in self._workers.values():
            if state.read_fd in readable:
                try:
                    data = os.read(state.read_fd, 4096)
                except OSError:
                    data = b""
                if data:
                    state.last_beat = now
                    if READY in data:
                        state.ready = True
                # Empty read = EOF = the write end died with the worker;
                # reaping below notices the exit.
        self._reap(now)
        self._enforce_liveness(now)
        self._restart_due(now)

    def _reap(self, now: float) -> None:
        while True:
            try:
                pid, status = os.waitpid(-1, os.WNOHANG)
            except ChildProcessError:
                return
            if pid == 0:
                return
            for state in self._workers.values():
                if state.pid == pid:
                    self._mark_dead(state, status, now)
                    break

    def _mark_dead(self, state: _WorkerState, status: int, now: float) -> None:
        state.exits.append(status)
        state.pid = -1
        state.ready = False
        if state.read_fd >= 0:
            try:
                os.close(state.read_fd)
            except OSError:  # repro: allow[hygiene] fd already gone
                pass
            state.read_fd = -1
        if self._running:
            backoff = min(
                self.config.restart_backoff * (2 ** state.restarts),
                self.config.restart_backoff_max,
            )
            state.restarts += 1
            state.restart_at = now + backoff
            obs.counter("cluster.worker_deaths")

    def _enforce_liveness(self, now: float) -> None:
        if not self._running:
            return
        for state in self._workers.values():
            if state.pid <= 0:
                continue
            if now - state.last_beat > self.config.liveness_timeout:
                # Silent too long: assume wedged, kill; the reaper and
                # backoff machinery take it from there.
                obs.counter("cluster.liveness_kills")
                try:
                    os.kill(state.pid, signal.SIGKILL)
                except ProcessLookupError:  # repro: allow[hygiene] lost the race with exit
                    pass

    def _restart_due(self, now: float) -> None:
        if not self._running:
            return
        for state in self._workers.values():
            if state.pid <= 0 and now >= state.restart_at:
                self._fork_worker(state, now)
                obs.counter("cluster.worker_restarts")

    def run(self) -> None:
        """Monitor until SIGTERM/SIGINT, then drain the fleet."""
        stop = {"flag": False}

        def _handle(signum, frame):
            stop["flag"] = True

        previous_term = signal.signal(signal.SIGTERM, _handle)
        previous_int = signal.signal(signal.SIGINT, _handle)
        try:
            while not stop["flag"]:
                self.step()
        finally:
            signal.signal(signal.SIGTERM, previous_term)
            signal.signal(signal.SIGINT, previous_int)
            self.stop()

    def kill_worker(self, shard: int, sig: int = signal.SIGKILL) -> int:
        """Kill one worker (failure injection for tests); returns its pid."""
        state = self._workers[shard]
        if state.pid <= 0:
            raise RuntimeError(f"shard {shard} has no live worker")
        pid = state.pid
        os.kill(pid, sig)
        return pid

    def stop(self) -> None:
        """SIGTERM the fleet, wait for drain, SIGKILL stragglers, close."""
        if not self._running and not self._workers:
            return
        self._running = False
        for state in self._workers.values():
            if state.pid > 0:
                try:
                    os.kill(state.pid, signal.SIGTERM)
                except ProcessLookupError:  # repro: allow[hygiene] already exited
                    pass
        deadline = time.monotonic() + self.config.drain_timeout
        while time.monotonic() < deadline:
            self._reap(time.monotonic())
            if all(w.pid <= 0 for w in self._workers.values()):
                break
            time.sleep(0.05)
        for state in self._workers.values():
            if state.pid > 0:
                obs.counter("cluster.drain_kills")
                try:
                    os.kill(state.pid, signal.SIGKILL)
                except ProcessLookupError:  # repro: allow[hygiene] already exited
                    pass
                try:
                    os.waitpid(state.pid, 0)
                except ChildProcessError:  # repro: allow[hygiene] already reaped
                    pass
                state.pid = -1
            if state.read_fd >= 0:
                try:
                    os.close(state.read_fd)
                except OSError:  # repro: allow[hygiene] fd already gone
                    pass
                state.read_fd = -1
        for sock in self.shard_socks.values():
            sock.close()
        self.shard_socks.clear()
        if self.public_sock is not None:
            self.public_sock.close()
            self.public_sock = None
        obs.counter("cluster.stops")

    # -- context manager -----------------------------------------------

    def __enter__(self) -> ClusterSupervisor:
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
