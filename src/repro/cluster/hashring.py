"""Consistent-hash ring over shard indices.

Shard ownership must be a pure function of ``(user_id, n_shards)`` —
identical in every worker, in the supervisor, in a benchmark process
and across restarts — so the ring hashes with :func:`hashlib.blake2b`
rather than :func:`hash`, whose salt varies per process.

Each shard contributes ``vnodes`` points on a 64-bit ring (hash of
``"shard:<k>:<v>"``); a user id hashes to a point and is owned by the
first shard point clockwise from it.  Virtual nodes keep the load split
close to uniform and, when the shard count changes, move only ~1/n of
the keyspace — the classic consistent-hashing property, which matters
if a deployment ever resizes against persisted per-shard tile
namespaces.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right

#: Ring points contributed by each shard; 64 keeps the max/min shard
#: load ratio under ~1.3 at small shard counts.
DEFAULT_VNODES = 64


def _point(data: bytes) -> int:
    """A deterministic 64-bit ring position."""
    return int.from_bytes(
        hashlib.blake2b(data, digest_size=8).digest(), "big"
    )


class HashRing:
    """Immutable consistent-hash mapping of user ids to shard indices."""

    def __init__(self, n_shards: int, vnodes: int = DEFAULT_VNODES) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.n_shards = n_shards
        self.vnodes = vnodes
        points: list[tuple[int, int]] = []
        for shard in range(n_shards):
            for v in range(vnodes):
                points.append((_point(f"shard:{shard}:{v}".encode()), shard))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [s for _, s in points]

    def owner(self, user_id: int) -> int:
        """The shard index owning ``user_id``."""
        if self.n_shards == 1:
            return 0
        position = _point(f"user:{user_id}".encode())
        index = bisect_right(self._points, position)
        if index == len(self._points):  # wrap past the last point
            index = 0
        return self._owners[index]

    def __repr__(self) -> str:
        return f"HashRing(n_shards={self.n_shards}, vnodes={self.vnodes})"
