"""The forked cluster worker: warm up, serve, heartbeat, drain.

``worker_main`` runs in a freshly forked child and never returns — it
exits the process via ``os._exit`` so a worker can never fall back into
the supervisor's code or flush the supervisor's buffered streams twice.

Lifecycle
---------
1. **Warm up before accepting.**  The registry snapshot is built and
   the shard's summary tiles recovered *before* either listener starts,
   so the first request a worker ever sees is served from hot state
   (the pre-fork warmup idiom).  Workers signal readiness by writing
   ``R`` on the heartbeat pipe.
2. **Serve two listeners.**  The shared *public* socket (all workers
   accept on it; the kernel load-balances) and this shard's *private*
   socket (peers address it directly for forwarded slices and gather
   legs).  Both run the same app; the private one in a helper thread.
3. **Heartbeat.**  A daemon thread writes ``H`` on the pipe every
   ``heartbeat_interval`` seconds; a ``BrokenPipeError`` means the
   supervisor died, and the worker shuts itself down rather than run
   orphaned.
4. **Drain.**  SIGTERM stops both listeners; in-flight requests finish
   (non-daemon handler threads are joined), then the app drains once —
   flushing open summary minutes to the artifact store.

Per-shard state is disjoint by construction: the summary namespace is
``"<scale>-s<shard>of<n>"`` and the consistent-hash router only lets a
worker ingest its own users.
"""

from __future__ import annotations

import os
import signal
import socket
import sys
import threading

from repro import obs
from repro.cluster.hashring import HashRing
from repro.cluster.router import ShardRouter
from repro.pipeline.store import ArtifactStore
from repro.serve.app import EstimationServer, create_app

#: Pipe bytes: worker ready (warmup finished) / liveness heartbeat.
READY = b"R"
HEARTBEAT = b"H"


def summary_namespace(
    scale_value: str, shard: int, n_shards: int, gazetteer: str | None = None
) -> str:
    """The per-shard tile namespace (a single path segment).

    Non-legacy gazetteers prefix their slug so shard tile sets from
    different area systems stay disjoint in one artifact store.
    """
    if gazetteer in (None, "", "legacy"):
        return f"{scale_value}-s{shard}of{n_shards}"
    slug = gazetteer.replace(":", "-").replace("@", "-")
    return f"{slug}-{scale_value}-s{shard}of{n_shards}"


def _heartbeat_loop(fd: int, interval: float, stop: threading.Event) -> None:
    """Write liveness bytes until stopped or the supervisor vanishes."""
    while not stop.wait(interval):
        try:
            os.write(fd, HEARTBEAT)
        except (BrokenPipeError, OSError):
            # Supervisor is gone; don't serve as an orphan.
            stop.set()
            os.kill(os.getpid(), signal.SIGTERM)
            return


def worker_main(
    shard: int,
    config,
    public_sock: socket.socket,
    shard_sock: socket.socket,
    peer_addrs: dict[int, str],
    heartbeat_fd: int,
) -> None:
    """Run one worker to completion; exits the process (never returns).

    Parameters mirror what the supervisor owns pre-fork: the two
    already-listening sockets, the full shard address map and the write
    end of this worker's heartbeat pipe.  ``config`` is a
    :class:`~repro.cluster.supervisor.ClusterConfig`.
    """
    exit_code = 0
    try:
        obs.counter("cluster.worker_starts")
        store = ArtifactStore(config.cache_dir)
        app = create_app(
            store,
            monitor_scale=config.monitor_scale,
            window_seconds=config.window_seconds,
            poll_interval=config.poll_interval,
            max_body_bytes=config.max_body_bytes,
            with_summary=config.with_summary,
            summary_namespace=summary_namespace(
                config.monitor_scale.value,
                shard,
                config.workers,
                gazetteer=config.gazetteer,
            ),
            gazetteer=config.gazetteer,
        )
        router = ShardRouter(
            shard, HashRing(config.workers), peer_addrs, app
        )
        app.shard_router = router
        app.cache_shard_key = (shard, config.workers)

        public = EstimationServer(
            public_sock.getsockname()[:2],
            app,
            access_log_file=sys.stderr,
            sock=public_sock,
            flush_on_drain=False,
        )
        private = EstimationServer(
            shard_sock.getsockname()[:2],
            app,
            access_log_file=None,
            sock=shard_sock,
            flush_on_drain=False,
        )

        stop_heartbeat = threading.Event()

        def _shutdown(signum, frame):
            # shutdown() must not run on a serve_forever thread.
            threading.Thread(target=public.shutdown, daemon=True).start()
            threading.Thread(target=private.shutdown, daemon=True).start()

        signal.signal(signal.SIGTERM, _shutdown)
        signal.signal(signal.SIGINT, signal.SIG_IGN)  # supervisor's TERM drives us

        # Warmup is done (create_app preloads the registry and recovers
        # tiles); tell the supervisor before the first accept.
        os.write(heartbeat_fd, READY)
        threading.Thread(
            target=_heartbeat_loop,
            args=(heartbeat_fd, config.heartbeat_interval, stop_heartbeat),
            name=f"heartbeat-s{shard}",
            daemon=True,
        ).start()

        private_thread = threading.Thread(
            target=private.serve_forever,
            kwargs={"poll_interval": 0.1},
            name=f"private-s{shard}",
        )
        private_thread.start()
        try:
            public.serve_forever(poll_interval=0.1)
        finally:
            stop_heartbeat.set()
            private_thread.join()
            # Both listeners closed: drain exactly once, flushing open
            # summary minutes so a SIGTERM mid-minute loses nothing.
            public.server_close()
            private.server_close()
            router.close()
            app.drain()
    except BaseException:  # repro: allow[hygiene] worker death is accounted via exit code
        exit_code = 1
    finally:
        try:
            os.close(heartbeat_fd)
        except OSError:  # repro: allow[hygiene] already closed
            pass
        os._exit(exit_code)
