"""Exact merging of per-shard windowed answers.

Shards partition *users* (consistent hashing of user id), so every
per-shard quantity the windowed endpoints report is additive:

* ``tweets`` — each tweet lands on exactly one shard.
* ``twitter_population`` — unique-user counts; a user's tweets all live
  on one shard, so per-area unique-user sets are disjoint across shards
  and cardinalities sum exactly (no inclusion–exclusion needed).
* ``flow`` / ``total_trips`` — OD transitions are per-user sequences,
  wholly contained in the owning shard.

Staleness is *not* additive: the global watermark is the max of the
per-shard watermarks, so the merged window staleness is the **min** of
the per-shard staleness values (``max(0, .)`` and ``min(span, .)``
both commute with the min).  The per-shard values are preserved in a
``cluster`` block so operators can see a lagging shard.

``summary_version`` on a merged payload is the *sum* of the shard
versions — still monotone under any shard's ingest, which is the only
property the serving cache relies on (merged answers bypass the worker
LRU anyway; the sum is for visibility).

:func:`merge_window_results` merges raw
:class:`~repro.summary.store.WindowSummary` objects — the in-process
path used by equivalence tests and benchmarks;
:func:`merge_population_payloads` / :func:`merge_flows_payloads` merge
the rendered HTTP payloads — the scatter-gather path.
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence

import numpy as np

from repro.summary.store import WindowSummary


def merge_window_results(results: Sequence[WindowSummary]) -> WindowSummary:
    """Merge per-shard :class:`WindowSummary` objects for one window.

    All results must cover the same effective ``[t0, t1)`` — they came
    from the same query fanned out to shards over identical worlds.
    """
    if not results:
        raise ValueError("need at least one WindowSummary to merge")
    first = results[0]
    for result in results[1:]:
        if (result.t0, result.t1) != (first.t0, first.t1):
            raise ValueError(
                f"window mismatch: ({first.t0}, {first.t1}) vs "
                f"({result.t0}, {result.t1})"
            )
    tiles: Counter = Counter()
    for result in results:
        tiles.update(result.tiles_used)
    return WindowSummary(
        t0=first.t0,
        t1=first.t1,
        tweet_counts=np.sum([r.tweet_counts for r in results], axis=0),
        user_counts=np.sum([r.user_counts for r in results], axis=0),
        flow_matrix=np.sum([r.flow_matrix for r in results], axis=0),
        n_tweets=sum(r.n_tweets for r in results),
        n_transitions=sum(r.n_transitions for r in results),
        buckets_touched=sum(r.buckets_touched for r in results),
        tiles_used=dict(tiles),
        staleness_seconds=min(r.staleness_seconds for r in results),
        version=sum(r.version for r in results),
    )


def _cluster_block(payloads: Sequence[dict]) -> dict:
    """The per-shard visibility block attached to merged payloads."""
    return {
        "shards": len(payloads),
        "staleness_seconds": [p["staleness_seconds"] for p in payloads],
        "versions": [p["summary_version"] for p in payloads],
        "buckets_touched": [p["buckets_touched"] for p in payloads],
    }


def _merge_tiles_used(payloads: Sequence[dict]) -> dict:
    tiles: Counter = Counter()
    for payload in payloads:
        tiles.update(payload.get("tiles_used") or {})
    return dict(tiles)


def merge_population_payloads(payloads: Sequence[dict]) -> dict:
    """Merge per-shard ``/v1/population?window=`` payloads (in shard order).

    Area lists are elementwise-aligned — every shard renders its world's
    areas in world order — so the merge sums counts per position and
    keeps the census column from the first shard.
    """
    if not payloads:
        raise ValueError("need at least one payload to merge")
    first = payloads[0]
    areas = [dict(area) for area in first["areas"]]
    for payload in payloads[1:]:
        if len(payload["areas"]) != len(areas):
            raise ValueError(
                f"area count mismatch: {len(areas)} vs {len(payload['areas'])}"
            )
        for merged, area in zip(areas, payload["areas"]):
            if merged["name"] != area["name"]:
                raise ValueError(
                    f"area order mismatch: {merged['name']!r} vs {area['name']!r}"
                )
            merged["twitter_population"] += area["twitter_population"]
            merged["tweets"] += area["tweets"]
    return {
        "scale": first["scale"],
        "radius_km": first["radius_km"],
        "source": "summary",
        "window": first["window"],
        "staleness_seconds": min(p["staleness_seconds"] for p in payloads),
        "buckets_touched": sum(p["buckets_touched"] for p in payloads),
        "tiles_used": _merge_tiles_used(payloads),
        "summary_version": sum(p["summary_version"] for p in payloads),
        "areas": areas,
        "cluster": _cluster_block(payloads),
    }


def merge_flows_payloads(payloads: Sequence[dict], names: Sequence[str]) -> dict:
    """Merge per-shard ``/v1/flows?window=`` payloads (in shard order).

    ``names`` is the world's area-name list; merged flow entries are
    re-emitted in world-index order — the same row-major
    nonzero-off-diagonal order a single process renders — so a gathered
    answer is bit-identical to the unsharded one.
    """
    if not payloads:
        raise ValueError("need at least one payload to merge")
    first = payloads[0]
    index = {name: i for i, name in enumerate(names)}
    flows: dict[tuple[int, int], int] = {}
    distance: dict[tuple[int, int], float] = {}
    for payload in payloads:
        for entry in payload["flows"]:
            pair = (index[entry["origin"]], index[entry["dest"]])
            flows[pair] = flows.get(pair, 0) + entry["flow"]
            distance[pair] = entry["distance_km"]
    return {
        "scale": first["scale"],
        "source": "summary",
        "window": first["window"],
        "staleness_seconds": min(p["staleness_seconds"] for p in payloads),
        "buckets_touched": sum(p["buckets_touched"] for p in payloads),
        "tiles_used": _merge_tiles_used(payloads),
        "summary_version": sum(p["summary_version"] for p in payloads),
        "total_trips": sum(p["total_trips"] for p in payloads),
        "flows": [
            {
                "origin": names[i],
                "dest": names[j],
                "flow": flows[i, j],
                "distance_km": distance[i, j],
            }
            for (i, j) in sorted(flows)
            if flows[i, j] > 0
        ],
        "cluster": _cluster_block(payloads),
    }
