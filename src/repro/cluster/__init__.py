"""Pre-fork multi-worker serving with consistent-hash sharded ingest.

``repro.serve`` is a single-process service; this package scales it
horizontally on one host without any new dependency:

``hashring``
    Deterministic consistent-hash ring mapping user ids to shards —
    every process (and every restart) computes the same owner for the
    same user, which is what makes per-shard accumulator state disjoint.
``router``
    The per-worker shard router: splits/forwards misrouted ingest
    batches (307 when a batch is wholly someone else's), scatter-gathers
    windowed reads across shards and merges the per-shard answers.
``merge``
    Payload-level merge of per-shard population/flow answers — exact,
    because shards partition users, so counts simply add.
``worker``
    The forked child: warm up (registry load + summary recover) before
    accepting, serve the shared public socket plus a private shard
    socket, heartbeat to the supervisor, drain and flush on SIGTERM.
``supervisor``
    Binds every listening socket once, forks N workers, monitors
    liveness via heartbeat pipes, restarts crashed workers with
    exponential backoff, drains the fleet on SIGTERM.

Boot a cluster with ``repro serve --workers N`` or programmatically::

    from repro.cluster import ClusterConfig, ClusterSupervisor

    with ClusterSupervisor(ClusterConfig(workers=4)) as sup:
        sup.wait_ready()
        sup.run()          # until SIGTERM/SIGINT
"""

from repro.cluster.hashring import HashRing
from repro.cluster.merge import (
    merge_flows_payloads,
    merge_population_payloads,
    merge_window_results,
)
from repro.cluster.router import ShardRouter
from repro.cluster.supervisor import ClusterConfig, ClusterSupervisor

__all__ = [
    "ClusterConfig",
    "ClusterSupervisor",
    "HashRing",
    "ShardRouter",
    "merge_flows_payloads",
    "merge_population_payloads",
    "merge_window_results",
]
