"""Per-worker shard routing: ingest split/forward and scatter-gather reads.

Each cluster worker owns one :class:`ShardRouter`, attached to its
:class:`~repro.serve.app.EstimationApp` as the duck-typed
``shard_router`` hook (``serve`` stays below ``cluster`` in the layer
DAG, so the app never imports this module).

Routing contract
----------------
Every routed request carries ``forwarded=1`` in its query string, and
the app answers ``forwarded=1`` requests locally without consulting the
router — a forwarded request can therefore never be forwarded again,
which makes the topology loop-free by construction (at most one hop).

* **Ingest** (``route_ingest``): the batch is grouped by ring owner.
  A batch owned *wholly* by one other shard gets a ``307`` with a
  ``Location`` pointing at that shard's private address — the cheap
  path for clients that already shard their submissions.  A mixed
  batch is split: the local slice applies in-process and each foreign
  slice is re-posted to its owner, with the per-shard outcomes summed
  and a ``routing`` block describing the split.
* **Reads** (``gather_population`` / ``gather_flows``): the windowed
  query fans out to every shard concurrently (the local shard answers
  in-process), and the per-shard payloads merge exactly via
  :mod:`repro.cluster.merge`.  Any shard failure fails the gather with
  a ``503`` naming the shards that did not answer — a partial merge
  would silently under-count.

The HTTP leg uses stdlib ``urllib`` against the peers' private
per-shard addresses; tests inject an in-process ``transport`` instead.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Mapping, Sequence
from urllib.parse import urlencode

from repro import obs
from repro.cluster.hashring import HashRing
from repro.cluster.merge import merge_flows_payloads, merge_population_payloads
from repro.data.schema import Tweet
from repro.serve.app import ApiError, EstimationApp

#: Seconds a worker waits on one peer leg before failing the request.
PEER_TIMEOUT = 10.0

#: ``transport(method, url, body_or_None) -> (status, payload)``.
Transport = Callable[[str, str, dict | None], tuple[int, dict]]


def http_transport(method: str, url: str, body: dict | None) -> tuple[int, dict]:
    """One JSON request/response leg over stdlib urllib."""
    data = None if body is None else json.dumps(body).encode("utf-8")
    request = urllib.request.Request(
        url,
        data=data,
        method=method,
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(request, timeout=PEER_TIMEOUT) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        # Non-2xx with a JSON error body is still an answer.
        try:
            return exc.code, json.loads(exc.read().decode("utf-8"))
        except (ValueError, OSError):
            return exc.code, {"error": {"code": exc.code, "message": str(exc)}}


def _tweet_record(tweet: Tweet) -> dict:
    """Re-serialise a parsed tweet for a peer's ingest endpoint."""
    return {
        "user_id": tweet.user_id,
        "timestamp": tweet.timestamp,
        "lat": tweet.lat,
        "lon": tweet.lon,
    }


class ShardRouter:
    """Routes one worker's share of cluster traffic.

    Parameters
    ----------
    shard:
        This worker's shard index.
    ring:
        The cluster-wide :class:`HashRing` (identical in every worker).
    peers:
        Shard index → private base URL (``http://host:port``) for every
        shard, this worker's own included (unused — own-shard calls go
        in-process).
    app:
        The local :class:`EstimationApp`; its ``shard_router`` attribute
        should point back at this router.
    transport:
        Override for the HTTP leg (tests route to in-process apps).
    """

    def __init__(
        self,
        shard: int,
        ring: HashRing,
        peers: Mapping[int, str],
        app: EstimationApp,
        transport: Transport | None = None,
    ) -> None:
        if shard not in peers:
            raise ValueError(f"shard {shard} missing from peers {sorted(peers)}")
        self.shard = shard
        self.ring = ring
        self.peers = dict(peers)
        self.app = app
        self.transport: Transport = transport or http_transport
        # Created per-worker after the fork, so no pre-fork threads.
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, len(peers)),
            thread_name_prefix=f"gather-s{shard}",
        )

    # -- one leg -------------------------------------------------------

    def _call(
        self,
        shard: int,
        method: str,
        path: str,
        query: Mapping[str, str],
        body: dict | None,
    ) -> tuple[int, dict]:
        """One routed leg; own shard dispatches in-process."""
        routed_query = {**query, "forwarded": "1"}
        if shard == self.shard:
            status, payload, _cached = self.app.handle(
                method, path, routed_query, body
            )
            return status, payload
        base = self.peers[shard]
        pairs = urlencode(sorted(routed_query.items()))
        return self.transport(method, f"{base}{path}?{pairs}", body)

    # -- ingest --------------------------------------------------------

    def route_ingest(self, tweets: Sequence[Tweet]) -> tuple[int, dict]:
        """Split a parsed batch by ring owner; apply/forward each slice."""
        slices: dict[int, list[Tweet]] = {}
        for tweet in tweets:
            slices.setdefault(self.ring.owner(tweet.user_id), []).append(tweet)
        if len(slices) == 1:
            (owner,) = slices
            if owner != self.shard:
                # Wholly someone else's: tell the client where to go
                # instead of proxying the whole body through this worker.
                obs.counter("cluster.ingest_redirects")
                return 307, {
                    "redirect": {
                        "location": f"{self.peers[owner]}/v1/ingest",
                        "shard": owner,
                    }
                }
        local = slices.pop(self.shard, [])
        futures = {
            owner: self._pool.submit(
                self._call,
                owner,
                "POST",
                "/v1/ingest",
                {},
                {"tweets": [_tweet_record(t) for t in slice_]},
            )
            for owner, slice_ in slices.items()
        }
        payload = (
            self.app.ingest_apply(local)
            if local
            else {"accepted": 0, "dropped_stale": 0, "anomalies_raised": 0}
        )
        forwarded: dict[str, int] = {}
        failed: list[int] = []
        for owner in sorted(futures):
            try:
                status, peer = futures[owner].result(timeout=PEER_TIMEOUT * 2)
            except Exception:  # repro: allow[hygiene] leg failure recorded below
                status, peer = 0, {}
            if status != 200:
                failed.append(owner)
                continue
            forwarded[str(owner)] = len(slices[owner])
            payload["accepted"] += peer.get("accepted", 0)
            payload["dropped_stale"] += peer.get("dropped_stale", 0)
            payload["anomalies_raised"] += peer.get("anomalies_raised", 0)
            if "summary" in peer:
                mine = payload.setdefault(
                    "summary", {"accepted": 0, "dropped_late": 0, "version": 0}
                )
                mine["accepted"] += peer["summary"]["accepted"]
                mine["dropped_late"] += peer["summary"]["dropped_late"]
        if failed:
            obs.counter("cluster.ingest_forward_failures", len(failed))
            raise ApiError(
                502,
                f"ingest forward to shard(s) {failed} failed; "
                f"local slice of {len(local)} tweets was applied",
            )
        payload["routing"] = {
            "shard": self.shard,
            "local": len(local),
            "forwarded": forwarded,
        }
        obs.counter("cluster.ingest_routed")
        return 200, payload

    # -- scatter-gather reads ------------------------------------------

    def _gather(
        self, path: str, query: Mapping[str, str]
    ) -> list[dict]:
        """Fan a windowed read out to every shard; per-shard payloads.

        Raises ``503`` if any shard fails — a partial merge would
        silently under-count.
        """
        with obs.span("cluster.gather", path=path, shards=self.ring.n_shards):
            futures = {
                shard: self._pool.submit(
                    self._call, shard, "GET", path, query, None
                )
                for shard in range(self.ring.n_shards)
            }
            payloads: list[dict] = []
            failed: list[int] = []
            for shard in range(self.ring.n_shards):
                try:
                    status, payload = futures[shard].result(
                        timeout=PEER_TIMEOUT * 2
                    )
                except Exception:  # repro: allow[hygiene] leg failure recorded below
                    status, payload = 0, {}
                if status != 200:
                    failed.append(shard)
                else:
                    payloads.append(payload)
            if failed:
                obs.counter("cluster.gather_failures", len(failed))
                raise ApiError(
                    503, f"shard(s) {failed} did not answer {path}"
                )
            return payloads

    def gather_population(self, query: Mapping[str, str]) -> tuple[int, dict]:
        """Cluster-wide ``/v1/population?window=``: fan out and merge."""
        return 200, merge_population_payloads(
            self._gather("/v1/population", query)
        )

    def gather_flows(self, query: Mapping[str, str]) -> tuple[int, dict]:
        """Cluster-wide ``/v1/flows?window=``: fan out and merge."""
        return 200, merge_flows_payloads(
            self._gather("/v1/flows", query),
            list(self.app.summary.world.names),
        )

    def close(self) -> None:
        """Stop the gather pool (worker shutdown)."""
        self._pool.shutdown(wait=False)
