"""Shared population and OD accumulation primitives.

The paper's two artefact families — per-area population counts and
consecutive-pair OD flows — are accumulated in three cadences: one
vectorised pass over a sorted corpus (batch), incrementally per tweet
with window expiry (streaming), and batch-with-expiry behind the ingest
endpoint (serving).  The counting *rules* are identical everywhere:

* a tweet adds one to every area whose ε-disc contains it, and its user
  to each such area's unique-user set;
* a transition is recorded when a user's consecutive tweets carry two
  different (non-negative) area labels; unlabelled tweets still advance
  the user's position, breaking adjacency.

This module owns those rules once.  :func:`od_matrix_from_labels` is
the vectorised batch form; :class:`PopulationAccumulator` and
:class:`ODAccumulator` are the incremental forms with exact removal, so
windowed results equal a from-scratch recomputation at every instant
(property-tested in ``tests/core`` and ``tests/test_stream_properties``).
"""

from __future__ import annotations

import heapq
from collections import Counter, deque
from typing import Iterable

import numpy as np


def od_matrix_from_labels(
    user_ids: np.ndarray, labels: np.ndarray, n_areas: int
) -> tuple[np.ndarray, int]:
    """Vectorised consecutive-pair transition counting over sorted rows.

    ``user_ids``/``labels`` must be aligned and sorted by
    ``(user, time)`` — the corpus's native order.  Returns the
    ``(n_areas, n_areas)`` transition matrix and the transition count.
    """
    user_ids = np.asarray(user_ids)
    labels = np.asarray(labels)
    if labels.shape != user_ids.shape:
        raise ValueError("labels must align with user rows")
    if labels.size and labels.max() >= n_areas:
        raise ValueError("label index exceeds number of areas")
    matrix = np.zeros((n_areas, n_areas), dtype=np.int64)
    if user_ids.size < 2:
        return matrix, 0
    same_user = user_ids[1:] == user_ids[:-1]
    src = labels[:-1]
    dst = labels[1:]
    valid = same_user & (src >= 0) & (dst >= 0) & (src != dst)
    np.add.at(matrix, (src[valid], dst[valid]), 1)
    return matrix, int(valid.sum())


class PopulationAccumulator:
    """Incremental per-area tweet and unique-user counts.

    Holds the multiset of users per area so removal (window expiry) is
    exact: a user leaves an area's unique count only when their last
    in-window tweet there expires.
    """

    def __init__(self, n_areas: int) -> None:
        if n_areas < 0:
            raise ValueError(f"n_areas must be non-negative, got {n_areas}")
        self.n_areas = int(n_areas)
        self._tweet_counts = np.zeros(self.n_areas, dtype=np.int64)
        self._users_per_area: list[Counter[int]] = [
            Counter() for _ in range(self.n_areas)
        ]

    def add(self, area_indices: Iterable[int], user_id: int) -> None:
        """Count one tweet toward every containing area."""
        for index in area_indices:
            self._tweet_counts[index] += 1
            self._users_per_area[index][user_id] += 1

    def remove(self, area_indices: Iterable[int], user_id: int) -> None:
        """Reverse :meth:`add` for an expired tweet."""
        for index in area_indices:
            self._tweet_counts[index] -= 1
            users = self._users_per_area[index]
            users[user_id] -= 1
            if users[user_id] <= 0:
                del users[user_id]

    def tweet_counts(self) -> np.ndarray:
        """Tweets per area currently accumulated."""
        return self._tweet_counts.copy()

    def user_counts(self) -> np.ndarray:
        """Unique users per area currently accumulated."""
        return np.array(
            [len(c) for c in self._users_per_area], dtype=np.int64
        )

    @property
    def total_tweets(self) -> int:
        """Total tweet-area memberships currently accumulated."""
        return int(self._tweet_counts.sum())

    def snapshot(self) -> "PopulationAccumulator":
        """An independent deep copy of the current state.

        The copy shares nothing mutable with the source, so a finalized
        summary tile can hold it while the live accumulator keeps
        moving.
        """
        copy = PopulationAccumulator(self.n_areas)
        copy._tweet_counts = self._tweet_counts.copy()
        copy._users_per_area = [
            Counter(users) for users in self._users_per_area
        ]
        return copy

    def merge(self, other: "PopulationAccumulator") -> None:
        """Fold another accumulator's counts into this one.

        Exact for any split of the tweet stream — per-area user
        multisets add, so a user seen by both sides still counts once
        in :meth:`user_counts`.  ``other`` is read, never mutated.
        """
        if other.n_areas != self.n_areas:
            raise ValueError(
                f"cannot merge accumulators over {other.n_areas} areas "
                f"into one over {self.n_areas}"
            )
        self._tweet_counts += other._tweet_counts
        for mine, theirs in zip(self._users_per_area, other._users_per_area):
            mine.update(theirs)


class ODAccumulator:
    """Incremental OD transition counts with per-user position tracking.

    ``observe`` applies the transition rule to one labelled tweet;
    recorded transitions carry their timestamp so :meth:`expire_until`
    can retire them exactly when a sliding window closes over them.
    Stream-order enforcement stays with the caller — the accumulator is
    a pure counting structure.
    """

    def __init__(self, n_areas: int) -> None:
        if n_areas < 0:
            raise ValueError(f"n_areas must be non-negative, got {n_areas}")
        self.n_areas = int(n_areas)
        self._matrix = np.zeros((self.n_areas, self.n_areas), dtype=np.int64)
        self._last_label: dict[int, int] = {}
        self._events: deque[tuple[float, int, int]] = deque()

    def observe(self, user_id: int, label: int, timestamp: float) -> bool:
        """Apply one labelled tweet; True when a transition was recorded."""
        previous = self._last_label.get(user_id, -1)
        self._last_label[user_id] = label
        if previous >= 0 and label >= 0 and previous != label:
            self._matrix[previous, label] += 1
            self._events.append((timestamp, previous, label))
            return True
        return False

    def expire_until(self, cutoff: float) -> int:
        """Retire transitions with ``timestamp <= cutoff``; returns count."""
        expired = 0
        while self._events and self._events[0][0] <= cutoff:
            _ts, source, dest = self._events.popleft()
            self._matrix[source, dest] -= 1
            expired += 1
        return expired

    def flow_matrix(self) -> np.ndarray:
        """Transition counts currently accumulated."""
        return self._matrix.copy()

    @property
    def total_transitions(self) -> int:
        """Total transitions currently accumulated."""
        return int(self._matrix.sum())

    def snapshot(self) -> "ODAccumulator":
        """An independent deep copy of the current state."""
        copy = ODAccumulator(self.n_areas)
        copy._matrix = self._matrix.copy()
        copy._last_label = dict(self._last_label)
        copy._events = deque(self._events)
        return copy

    def merge(self, other: "ODAccumulator") -> None:
        """Fold a *user-disjoint* shard's transitions into this one.

        Sharded ingest partitions the stream by user id, so each
        accumulator owns disjoint per-user positions; merging sums the
        matrices and interleaves the timed events so later
        :meth:`expire_until` calls stay exact.  Overlapping user sets
        are rejected — consecutive-pair counting is not associative
        across an arbitrary split of one user's tweets.  ``other`` is
        read, never mutated.
        """
        if other.n_areas != self.n_areas:
            raise ValueError(
                f"cannot merge accumulators over {other.n_areas} areas "
                f"into one over {self.n_areas}"
            )
        shared = self._last_label.keys() & other._last_label.keys()
        if shared:
            raise ValueError(
                f"cannot merge OD accumulators sharing users "
                f"{sorted(shared)[:5]} — shard the stream by user id"
            )
        self._matrix += other._matrix
        self._last_label.update(other._last_label)
        self._events = deque(heapq.merge(self._events, other._events))
