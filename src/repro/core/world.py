"""The canonical area system: areas + ε radius + derived geometry.

Every estimation path in the repo — batch extraction, the streaming
counters, the serving snapshot, the epidemic networks — needs the same
bundle of facts about the study areas: the :class:`~repro.data.gazetteer.Area`
records themselves, the search radius ε, the centre coordinate columns,
the census population vector and the pairwise centre distance matrix.
Before ``repro.core`` each consumer re-derived those from an ad-hoc
``(areas, radius_km)`` tuple; :class:`World` derives each exactly once
and caches it, so a ``World`` can be passed around as *the* area system.

Derived arrays are lazy (``functools.cached_property``) because most
consumers need only a subset — the streaming counters never touch the
pairwise distance matrix, the epidemic networks never label tweets.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import cached_property
from typing import Sequence

import numpy as np

from repro.data.gazetteer import (
    Area,
    Gazetteer,
    Scale,
    areas_for_scale,
    gazetteer_from_spec,
    search_radius_km,
)
from repro.geo.distance import pairwise_distance_matrix, points_to_point_km
from repro.geo.index import BruteForceIndex, CenterGridIndex, GridIndex, build_index
from repro.geo.polygon import Polygon


@dataclass(frozen=True)
class World:
    """An immutable area system: the areas, their ε radius, and geometry.

    Attributes
    ----------
    areas:
        The study areas, in a fixed order that every derived array and
        every label index refers to.
    radius_km:
        The search radius ε: a tweet belongs to an area's ε-disc when
        its haversine distance to the centre is ``<= radius_km``.
    """

    areas: tuple[Area, ...]
    radius_km: float

    def __post_init__(self) -> None:
        if self.radius_km <= 0:
            raise ValueError(f"radius must be positive, got {self.radius_km}")
        if not isinstance(self.areas, tuple):
            object.__setattr__(self, "areas", tuple(self.areas))

    # -- construction --------------------------------------------------

    @classmethod
    def from_areas(cls, areas: Sequence[Area], radius_km: float) -> "World":
        """Build a world over any area sequence."""
        return cls(areas=tuple(areas), radius_km=float(radius_km))

    @classmethod
    def from_scale(
        cls,
        scale: Scale,
        radius_km: float | None = None,
        gazetteer: "Gazetteer | str | None" = None,
    ) -> "World":
        """The gazetteer world of one paper scale (ε from Section III).

        Pass ``radius_km`` to override the scale's default radius, e.g.
        the 0.5 km metropolitan sensitivity check of Fig 3(b).  Pass
        ``gazetteer`` (a resolved :class:`~repro.data.gazetteer.Gazetteer`
        or a spec string like ``synth:1000``) to build the scale over a
        country-scale synthetic area system instead of the paper's 60
        areas; the default keeps the legacy tables and never touches the
        generator.
        """
        if gazetteer is None:
            radius = search_radius_km(scale) if radius_km is None else float(radius_km)
            return cls(areas=areas_for_scale(scale), radius_km=radius)
        resolved = gazetteer_from_spec(gazetteer)
        radius = (
            resolved.search_radius_km(scale) if radius_km is None else float(radius_km)
        )
        return cls(areas=resolved.areas_for_scale(scale), radius_km=radius)

    def with_radius(self, radius_km: float) -> "World":
        """The same areas under a different search radius.

        The area tuple is shared, so gazetteer-level data is not copied;
        derived arrays are re-derived lazily for the new world.
        """
        if radius_km == self.radius_km:
            return self
        return replace(self, radius_km=float(radius_km))

    # -- basics --------------------------------------------------------

    @property
    def n_areas(self) -> int:
        """Number of areas in the system."""
        return len(self.areas)

    def __len__(self) -> int:
        return len(self.areas)

    @cached_property
    def names(self) -> tuple[str, ...]:
        """Area names aligned with the label indices."""
        return tuple(area.name for area in self.areas)

    def area_index(self, name: str) -> int:
        """Index of an area by (case-insensitive) name; -1 if unknown."""
        lowered = name.lower()
        for index, area in enumerate(self.areas):
            if area.name.lower() == lowered:
                return index
        return -1

    # -- derived geometry (cached) -------------------------------------

    @cached_property
    def centers_lat(self) -> np.ndarray:
        """Centre latitudes in degrees, aligned with label indices."""
        return np.array([a.center.lat for a in self.areas], dtype=np.float64)

    @cached_property
    def centers_lon(self) -> np.ndarray:
        """Centre longitudes in degrees, aligned with label indices."""
        return np.array([a.center.lon for a in self.areas], dtype=np.float64)

    @cached_property
    def populations(self) -> np.ndarray:
        """Census populations as float64, aligned with label indices."""
        return np.array([a.population for a in self.areas], dtype=np.float64)

    @cached_property
    def distance_matrix_km(self) -> np.ndarray:
        """Pairwise haversine distances between area centres.

        Computed once per world; the OD models, the epidemic networks
        and the serving snapshot all share this array.
        """
        return pairwise_distance_matrix([a.center for a in self.areas])

    @cached_property
    def centers_index(self) -> "GridIndex | BruteForceIndex":
        """A spatial index over the area centres.

        Brute force below :data:`repro.geo.index.GRID_INDEX_THRESHOLD`
        centres (the paper's 60-area worlds), grid-bucketed above it
        (country-scale gazetteers); both answer radius queries
        identically, proven by the equivalence suite.
        """
        return build_index(self.centers_lat, self.centers_lon)

    @cached_property
    def center_grid(self) -> CenterGridIndex:
        """The grid-bucketed ε-labelling index over the area centres.

        Built lazily: only the large-world labelling path (see
        :func:`repro.core.label.label_points`) touches it, so the
        paper's 60-area worlds never pay for candidate registration.
        """
        return CenterGridIndex(self.centers_lat, self.centers_lon, self.radius_km)

    @cached_property
    def footprints(self) -> tuple["Polygon | None", ...]:
        """Polygon footprints aligned with label indices.

        ``None`` for areas without boundary geometry (the legacy
        gazetteer); synthetic gazetteers supply a convex footprint for
        every area, and the footprints of one scale tile the country.
        """
        return tuple(area.footprint for area in self.areas)

    @property
    def has_footprints(self) -> bool:
        """Whether every area carries a polygon footprint."""
        return all(footprint is not None for footprint in self.footprints)

    def distances_to_point(self, lat: float, lon: float) -> np.ndarray:
        """Haversine distance from every centre to one point.

        One vectorised call over the centre columns; haversine is
        symmetric, so this equals the per-area batch orientation
        (verified bitwise in the kernel tests).
        """
        return points_to_point_km(self.centers_lat, self.centers_lon, (lat, lon))
