"""The kernel layer: canonical domain objects and hot estimation kernels.

``repro.core`` sits between the data layer and every estimation cadence
(batch extraction, streaming counters, the serving stack).  It owns the
three things the paper's artefacts are made of, exactly once:

``world``
    :class:`World` — the area system: areas + ε radius + cached centre
    columns, population vector, pairwise distance matrix.
``label``
    The ε-disc labelling kernels: index-accelerated batch labelling,
    the dense micro-batch kernel, scalar conveniences over the same
    arithmetic, and :class:`MicroBatchLabeler` for streaming.
``accumulate``
    Population and OD counting rules in vectorised-batch and
    incremental (windowed) forms.

Everything above this layer is an adapter: ``repro.extraction`` wraps
the batch kernels into the paper's artefact types, ``repro.stream``
wraps the incremental accumulators into sliding-window counters, and
``repro.serve`` ingests through those counters.  Batch ≡ stream ≡ serve
equivalence is therefore structural, not coincidental — and tested.
"""

from repro.core.accumulate import (
    ODAccumulator,
    PopulationAccumulator,
    od_matrix_from_labels,
)
from repro.core.label import (
    MicroBatchLabeler,
    build_index,
    containing_areas,
    count_population,
    label_corpus,
    label_point,
    label_points,
    membership_points,
    point_area_distances,
)
from repro.core.world import World

__all__ = [
    "MicroBatchLabeler",
    "ODAccumulator",
    "PopulationAccumulator",
    "World",
    "build_index",
    "containing_areas",
    "count_population",
    "label_corpus",
    "label_point",
    "label_points",
    "membership_points",
    "od_matrix_from_labels",
    "point_area_distances",
]
