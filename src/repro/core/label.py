"""Area-labelling kernels: the single source of truth for ε-disc tests.

Three code paths used to decide "which area does this tweet belong to":
vectorised batch labelling in ``repro.extraction.population``, a scalar
per-tweet linear scan in ``repro.stream.online``, and the serving ingest
path on top of that.  The scalar path computed distances with a slightly
different floating-point sequence than the batch path, so boundary and
tie decisions could drift between batch and stream.  This module is now
the only implementation; everything else adapts onto it.

Two kernels cover every cadence:

* :func:`label_corpus` — spatial-index-accelerated labelling of a whole
  corpus (per-area radius queries with pruning); the batch hot path.
* :func:`label_points` — dense vectorised labelling of coordinate
  arrays; the micro-batch kernel the streaming wrapper flushes through.

Both resolve overlapping ε-discs identically: the tweet belongs to the
*nearest* qualifying centre, ties broken toward the earlier area index,
boundary inclusive (``distance <= ε``).  :class:`MicroBatchLabeler`
wraps :func:`label_points` for streaming consumers that receive tweets
one at a time but want vectorised throughput.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro import obs
from repro.core.world import World
from repro.data.schema import Tweet
from repro.geo.distance import points_to_point_km

# build_index moved down into repro.geo.index so World can reach it
# without a core-internal cycle; re-exported here for existing callers.
from repro.geo.index import (  # noqa: F401  (re-exports)
    GRID_INDEX_THRESHOLD,
    BruteForceIndex,
    GridIndex,
    build_index,
)

#: Area count above which :func:`label_points` routes through the
#: world's grid-bucketed centre index instead of the dense distance
#: matrix.  The paper's worlds (20–60 areas) stay on the dense kernel —
#: its exact floating-point sequence is pinned by the goldens — while
#: country-scale gazetteers get O(points · candidates) labelling that
#: the equivalence suite proves indistinguishable.
DENSE_AREA_THRESHOLD = 128

#: Default flush size of :class:`MicroBatchLabeler`.  Large enough that
#: the per-batch numpy dispatch cost amortises to well under the cost of
#: one scalar haversine, small enough to keep streaming latency low.
DEFAULT_MICRO_BATCH = 1024


def point_area_distances(world: World, lats: np.ndarray, lons: np.ndarray) -> np.ndarray:
    """Dense ``(n_points, n_areas)`` haversine distance matrix.

    Column ``j`` is computed with the same vectorised call orientation
    as the batch radius queries, so distances are bit-identical to what
    the spatial index filters on.
    """
    lats = np.asarray(lats, dtype=np.float64)
    lons = np.asarray(lons, dtype=np.float64)
    if lats.shape != lons.shape or lats.ndim != 1:
        raise ValueError("lats/lons must be equal-length 1-D arrays")
    out = np.empty((lats.size, world.n_areas), dtype=np.float64)
    for j, area in enumerate(world.areas):
        out[:, j] = _column_distances(world, lats, lons, j)
    return out


def _column_distances(
    world: World, lats: np.ndarray, lons: np.ndarray, area_index: int
) -> np.ndarray:
    center = world.areas[area_index].center
    return points_to_point_km(lats, lons, (center.lat, center.lon))


def label_points(world: World, lats: np.ndarray, lons: np.ndarray) -> np.ndarray:
    """Label coordinate arrays: nearest area within ε, else -1.

    The micro-batch kernel.  Small worlds (≤ :data:`DENSE_AREA_THRESHOLD`
    areas — every paper-scale world) run the dense path: one
    ``(n_points, n_areas)`` distance computation, masked to the ε-discs,
    nearest centre by argmin (first minimum wins, i.e. ties resolve to
    the earlier area — exactly the strict-``<`` update order of the
    index-accelerated batch path).  Country-scale worlds route through
    the world's :class:`~repro.geo.index.CenterGridIndex`, which only
    touches each point's candidate centres; the result is bitwise
    identical to the dense path (argued in the index docstring, proven
    by the hypothesis suite), just asymptotically cheaper.
    """
    lats = np.asarray(lats, dtype=np.float64)
    lons = np.asarray(lons, dtype=np.float64)
    if lats.shape != lons.shape or lats.ndim != 1:
        raise ValueError("lats/lons must be equal-length 1-D arrays")
    if lats.size == 0 or world.n_areas == 0:
        return np.full(lats.size, -1, dtype=np.int64)
    with obs.span("core.label_points", points=int(lats.size), areas=world.n_areas) as sp:
        if world.n_areas > DENSE_AREA_THRESHOLD:
            labels = world.center_grid.label_points(lats, lons)
        else:
            distances = point_area_distances(world, lats, lons)
            outside = distances > world.radius_km
            distances[outside] = np.inf
            labels = np.argmin(distances, axis=1).astype(np.int64)
            labels[np.all(outside, axis=1)] = -1
        sp.set(labelled=int((labels >= 0).sum()))
    obs.counter("core.points_labelled", int(lats.size))
    return labels


def label_points_dense(world: World, lats: np.ndarray, lons: np.ndarray) -> np.ndarray:
    """The dense reference kernel, with no index dispatch.

    Used by the equivalence suite and benchmarks as the brute-force
    baseline at any world size; :func:`label_points` is the production
    entry point.
    """
    lats = np.asarray(lats, dtype=np.float64)
    lons = np.asarray(lons, dtype=np.float64)
    if lats.shape != lons.shape or lats.ndim != 1:
        raise ValueError("lats/lons must be equal-length 1-D arrays")
    if lats.size == 0 or world.n_areas == 0:
        return np.full(lats.size, -1, dtype=np.int64)
    distances = point_area_distances(world, lats, lons)
    outside = distances > world.radius_km
    distances[outside] = np.inf
    labels = np.argmin(distances, axis=1).astype(np.int64)
    labels[np.all(outside, axis=1)] = -1
    return labels


def label_point(world: World, lat: float, lon: float) -> int:
    """Label one point: nearest area within ε, else -1.

    The scalar convenience over the same kernel arithmetic — a single
    vectorised distance call over the centre columns (haversine is
    symmetric, so the orientation swap is exact; see the kernel tests).
    """
    if world.n_areas == 0:
        return -1
    if world.n_areas > DENSE_AREA_THRESHOLD:
        return world.center_grid.label_point(lat, lon)
    distances = world.distances_to_point(lat, lon)
    nearest = int(np.argmin(distances))
    if distances[nearest] <= world.radius_km:
        return nearest
    return -1


def containing_areas(world: World, lat: float, lon: float) -> np.ndarray:
    """Indices of *every* area whose ε-disc contains the point.

    Population counting — unlike OD labelling — counts a tweet toward
    each overlapping disc independently, matching the batch extractor's
    per-area radius queries.
    """
    if world.n_areas == 0:
        return np.empty(0, dtype=np.int64)
    distances = world.distances_to_point(lat, lon)
    return np.nonzero(distances <= world.radius_km)[0].astype(np.int64)


def membership_points(world: World, lats: np.ndarray, lons: np.ndarray) -> np.ndarray:
    """Dense boolean ``(n_points, n_areas)`` ε-disc membership matrix."""
    distances = point_area_distances(world, lats, lons)
    return distances <= world.radius_km


def label_corpus(
    world: World,
    lats: np.ndarray,
    lons: np.ndarray,
    index: GridIndex | BruteForceIndex | None = None,
) -> np.ndarray:
    """Label a full corpus through the spatial index: the batch kernel.

    Per-area radius queries (grid-pruned for large corpora) with a
    running nearest-distance resolution — identical labels to
    :func:`label_points`, asymptotically cheaper for small ε over large
    corpora because each query touches only candidate grid cells.
    """
    lats = np.asarray(lats, dtype=np.float64)
    lons = np.asarray(lons, dtype=np.float64)
    if lats.shape != lons.shape or lats.ndim != 1:
        raise ValueError("lats/lons must be equal-length 1-D arrays")
    if index is None:
        index = build_index(lats, lons)
    if len(index) != lats.size:
        raise ValueError("index was built over a different point set")
    with obs.span(
        "core.label_corpus", points=int(lats.size), areas=world.n_areas,
        radius_km=world.radius_km,
    ) as sp:
        labels = np.full(lats.size, -1, dtype=np.int64)
        best_distance = np.full(lats.size, np.inf, dtype=np.float64)
        for area_index, area in enumerate(world.areas):
            result = index.query_radius(area.center, world.radius_km)
            closer = result.distances_km < best_distance[result.indices]
            rows = result.indices[closer]
            labels[rows] = area_index
            best_distance[rows] = result.distances_km[closer]
        sp.set(labelled=int((labels >= 0).sum()))
    obs.counter("core.points_labelled", int(lats.size))
    obs.counter("core.area_queries", world.n_areas)
    return labels


def count_population(
    world: World,
    lats: np.ndarray,
    lons: np.ndarray,
    user_ids: np.ndarray,
    index: GridIndex | BruteForceIndex | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-area tweet and unique-user counts within ε of each centre.

    The batch population kernel behind
    ``repro.extraction.population.extract_area_observations``: each
    area's ε-disc is queried independently (overlapping discs each
    count the tweet), and the area's "Twitter population" is the number
    of distinct user ids among the hits.

    Returns ``(tweet_counts, user_counts)`` aligned with the world's
    label indices.
    """
    lats = np.asarray(lats, dtype=np.float64)
    lons = np.asarray(lons, dtype=np.float64)
    user_ids = np.asarray(user_ids)
    if index is None:
        index = build_index(lats, lons)
    if len(index) != lats.size:
        raise ValueError("index was built over a different point set")
    tweet_counts = np.zeros(world.n_areas, dtype=np.int64)
    user_counts = np.zeros(world.n_areas, dtype=np.int64)
    with obs.span(
        "core.count_population", points=int(lats.size), areas=world.n_areas,
        radius_km=world.radius_km,
    ) as sp:
        matched = 0
        for area_index, area in enumerate(world.areas):
            result = index.query_radius(area.center, world.radius_km)
            users_here = np.unique(user_ids[result.indices])
            matched += len(result)
            tweet_counts[area_index] = len(result)
            user_counts[area_index] = int(users_here.size)
        sp.set(tweets_matched=matched)
    obs.counter("core.points_labelled", int(lats.size))
    obs.counter("core.area_queries", world.n_areas)
    return tweet_counts, user_counts


class MicroBatchLabeler:
    """Micro-batching adapter from a tweet-at-a-time stream to the kernel.

    Streaming consumers receive tweets one at a time but pay an order of
    magnitude less per label when the dense kernel runs over a batch.
    The labeler buffers tweets and flushes them through
    :func:`label_points` when the buffer fills (or on demand), yielding
    ``(tweet, label)`` pairs in arrival order.

    The labels are pure functions of the coordinates, so batching never
    changes a result — only when it becomes available.  Consumers that
    need a label *synchronously* per tweet (the online counters' scalar
    ``push``) use :func:`label_point` instead; both run the same
    arithmetic.
    """

    def __init__(self, world: World, batch_size: int = DEFAULT_MICRO_BATCH) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.world = world
        self.batch_size = int(batch_size)
        self._pending: list[Tweet] = []

    def __len__(self) -> int:
        return len(self._pending)

    def add(self, tweet: Tweet) -> list[tuple[Tweet, int]]:
        """Buffer one tweet; returns flushed pairs when the batch fills."""
        self._pending.append(tweet)
        if len(self._pending) >= self.batch_size:
            return self.flush()
        return []

    def flush(self) -> list[tuple[Tweet, int]]:
        """Label and drain everything buffered, in arrival order."""
        if not self._pending:
            return []
        batch = self._pending
        self._pending = []
        labels = self.label_batch(batch)
        return list(zip(batch, (int(label) for label in labels)))

    def label_batch(self, tweets: Sequence[Tweet]) -> np.ndarray:
        """Label an explicit batch through the dense kernel."""
        n = len(tweets)
        lats = np.fromiter((t.lat for t in tweets), np.float64, count=n)
        lons = np.fromiter((t.lon for t in tweets), np.float64, count=n)
        return label_points(self.world, lats, lons)

    def label_stream(
        self, stream: Iterable[Tweet]
    ) -> Iterator[tuple[Tweet, int]]:
        """Label a whole stream in micro-batches, preserving order."""
        for tweet in stream:
            yield from self.add(tweet)
        yield from self.flush()
