"""Test-time lock-order sanitizer: validate the static model by running it.

The static side (:mod:`repro.check.lockmodel`) derives a lock-order
graph from source; this module derives one from *execution*.  When
``REPRO_LOCK_SANITIZER=1``, the test harness installs a
:class:`LockSanitizer` that replaces ``threading.Lock``/``RLock`` with
factories returning instrumented wrappers — but only for locks created
by code in the watched packages (``repro`` by default), decided by the
creating frame's module.  Every acquisition then records an *observed*
order edge ``a -> b`` for each lock ``a`` the acquiring thread already
holds, with a witness (thread, source location).

Two consistency guarantees fall out:

* **runtime vs runtime** — in strict mode, acquiring ``b`` under ``a``
  after ``a`` was ever acquired under ``b`` raises
  :class:`LockOrderViolation` on the spot, with both witnesses: that is
  an ABBA interleaving actually reachable by the test suite.
* **runtime vs static** — :meth:`LockSanitizer.verify_against` checks
  every observed edge between statically-known locks against the
  statically derived graph: a *contradiction* (the static graph orders
  the pair the other way) fails the run; an *unmodelled* edge (neither
  direction known statically) is reported so the model can grow.

Lock identities mirror the static convention so the two graphs join:
``module.Class.attr`` for a lock bound to ``self.attr`` in a method,
``module.name`` for a module-level binding — both recovered from the
creating frame via :mod:`linecache`.  A creation site that matches
neither shape (e.g. a comprehension) is keyed by its code location,
which still supports runtime-vs-runtime checking.

The wrapper is deliberately not installed process-wide by default:
``install()`` patches, ``uninstall()`` restores, and the stdlib's own
internal lock creation (``threading.Condition`` building its ``RLock``)
is never wrapped because its creating frame lives in ``threading``.
"""

from __future__ import annotations

import json
import linecache
import re
import sys
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping

#: Environment flag the test harness checks before installing.
ENV_FLAG = "REPRO_LOCK_SANITIZER"

#: ``self.attr = threading.Lock()`` — a class lock's creation line.
_SELF_ATTR_RE = re.compile(r"^\s*self\.(\w+)\s*(?::[^=]*)?=")

#: ``name = threading.Lock()`` — a module/local binding's creation line.
_NAME_RE = re.compile(r"^\s*(\w+)\s*(?::[^=]*)?=")


class LockOrderViolation(AssertionError):
    """Two watched locks were acquired in both orders at runtime."""


@dataclass
class EdgeRecord:
    """One observed order edge with its first witness."""

    src: str
    dst: str
    count: int = 0
    thread: str = ""
    where: str = ""

    def as_json(self) -> dict[str, object]:
        return {
            "src": self.src,
            "dst": self.dst,
            "count": self.count,
            "first_thread": self.thread,
            "first_site": self.where,
        }


@dataclass
class _Held:
    """Per-thread acquisition stack (idents, innermost last)."""

    stack: list[str] = field(default_factory=list)


class _SanitizedLock:
    """Instrumented proxy over a real ``threading`` lock.

    Supports the full lock protocol (context manager, ``acquire`` with
    ``blocking``/``timeout``, ``release``, ``locked``) and forwards
    anything else — ``Condition`` internals never reach here because
    stdlib-created locks are not wrapped.
    """

    def __init__(self, inner: object, ident: str, sanitizer: "LockSanitizer") -> None:
        self._inner = inner
        self._ident = ident
        self._sanitizer = sanitizer

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)  # type: ignore[attr-defined]
        if acquired:
            self._sanitizer._on_acquire(self._ident)
        return acquired

    def release(self) -> None:
        self._inner.release()  # type: ignore[attr-defined]
        self._sanitizer._on_release(self._ident)

    def locked(self) -> bool:
        return self._inner.locked()  # type: ignore[attr-defined]

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: object) -> None:
        self.release()

    def __getattr__(self, name: str) -> object:
        return getattr(self._inner, name)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<sanitized {self._ident} wrapping {self._inner!r}>"


class LockSanitizer:
    """Records runtime lock-acquisition order for watched packages."""

    def __init__(
        self,
        packages: tuple[str, ...] = ("repro",),
        strict: bool = True,
    ) -> None:
        self.packages = packages
        self.strict = strict
        self.observed: dict[tuple[str, str], EdgeRecord] = {}
        self.locks_seen: set[str] = set()
        self._held = threading.local()
        self._mutate = _RAW_LOCK()  # guards `observed` across threads
        self._real_lock: object | None = None
        self._real_rlock: object | None = None
        self._installed = False

    # -- installation --------------------------------------------------

    def install(self) -> "LockSanitizer":
        """Patch ``threading.Lock``/``RLock`` with watching factories."""
        if self._installed:
            return self
        self._real_lock = threading.Lock
        self._real_rlock = threading.RLock
        threading.Lock = self._factory(self._real_lock)  # type: ignore[misc]
        threading.RLock = self._factory(self._real_rlock)  # type: ignore[misc]
        self._installed = True
        return self

    def uninstall(self) -> None:
        """Restore the real constructors."""
        if not self._installed:
            return
        threading.Lock = self._real_lock  # type: ignore[misc]
        threading.RLock = self._real_rlock  # type: ignore[misc]
        self._installed = False

    def __enter__(self) -> "LockSanitizer":
        return self.install()

    def __exit__(self, *exc: object) -> None:
        self.uninstall()

    def _factory(self, real: object):
        def make_lock(*args: object, **kwargs: object) -> object:
            inner = real(*args, **kwargs)  # type: ignore[operator]
            frame = sys._getframe(1)
            module = frame.f_globals.get("__name__", "")
            if module == __name__:
                # A stacked sanitizer's own factory is creating the
                # inner lock — wrapping here would double-instrument.
                return inner
            if not any(
                module == pkg or module.startswith(pkg + ".")
                for pkg in self.packages
            ):
                return inner
            ident = _derive_ident(frame, module)
            self.locks_seen.add(ident)
            return _SanitizedLock(inner, ident, self)

        return make_lock

    # -- acquisition bookkeeping ---------------------------------------

    def _stack(self) -> list[str]:
        held = getattr(self._held, "value", None)
        if held is None:
            held = _Held()
            self._held.value = held
        return held.stack

    def _on_acquire(self, ident: str) -> None:
        stack = self._stack()
        reentrant = ident in stack
        if not reentrant:
            where = _call_site()
            for held in dict.fromkeys(stack):  # distinct, in order
                if held == ident:
                    continue
                self._record(held, ident, where)
        stack.append(ident)

    def _on_release(self, ident: str) -> None:
        stack = self._stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] == ident:
                del stack[index]
                break

    def _record(self, src: str, dst: str, where: str) -> None:
        thread_name = threading.current_thread().name
        with self._mutate:
            record = self.observed.get((src, dst))
            if record is None:
                record = EdgeRecord(src, dst, 0, thread_name, where)
                self.observed[(src, dst)] = record
            record.count += 1
            inverse = self.observed.get((dst, src))
        if self.strict and inverse is not None:
            raise LockOrderViolation(
                f"lock order inverted at runtime: '{dst}' was acquired "
                f"while '{src}' was held ({thread_name} at {where}), but "
                f"'{src}' was previously acquired while '{dst}' was held "
                f"({inverse.thread} at {inverse.where}) — two threads "
                "interleaving these paths deadlock"
            )

    # -- reporting -----------------------------------------------------

    def verify_against(
        self,
        static_edges: Iterable[tuple[str, str]],
        static_locks: Iterable[str] | None = None,
    ) -> dict[str, list[str]]:
        """Check observed edges against the statically derived graph.

        Returns ``{"contradictions": [...], "unmodelled": [...]}`` —
        contradictions are observed edges whose *reverse* is the static
        order (the model and the execution disagree; someone is wrong
        and it is a deadlock either way); unmodelled edges join two
        statically-known locks in an order the model never derived,
        usually because the chain runs through an attribute call the
        conservative call graph cannot resolve.  Pass the model's full
        lock set as ``static_locks`` to catch those; by default only
        locks appearing in ``static_edges`` are considered known.
        """
        static = set(static_edges)
        if static_locks is None:
            static_locks = {ident for edge in static for ident in edge}
        else:
            static_locks = set(static_locks)
        contradictions: list[str] = []
        unmodelled: list[str] = []
        for (src, dst), record in sorted(self.observed.items()):
            if (dst, src) in static:
                contradictions.append(
                    f"observed '{src}' -> '{dst}' ({record.thread} at "
                    f"{record.where}) but the static graph orders "
                    f"'{dst}' before '{src}'"
                )
            elif (
                src in static_locks
                and dst in static_locks
                and (src, dst) not in static
            ):
                unmodelled.append(
                    f"observed '{src}' -> '{dst}' ({record.thread} at "
                    f"{record.where}) has no statically derived edge"
                )
        return {"contradictions": contradictions, "unmodelled": unmodelled}

    def report(self) -> dict[str, object]:
        """JSON-serialisable summary of the run."""
        return {
            "version": 1,
            "packages": list(self.packages),
            "locks_seen": sorted(self.locks_seen),
            "observed_edges": [
                record.as_json()
                for _, record in sorted(self.observed.items())
            ],
        }

    def dump(self, path: str | Path) -> None:
        """Write :meth:`report` to ``path`` as indented JSON."""
        Path(path).write_text(
            json.dumps(self.report(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )


#: The unpatched Lock constructor, captured at import for internal use.
_RAW_LOCK = threading.Lock


def _derive_ident(frame: object, module: str) -> str:
    """Recover the static lock identity from the creating frame.

    ``self.attr = threading.Lock()`` in a method names the lock
    ``defining_module.Class.attr`` (via ``type(self)``, matching where
    the class is *defined*, as the static model does); a plain
    ``name = ...`` at module level names it ``module.name``.  Anything
    else is keyed by code location — unique, just not joinable with the
    static graph.
    """
    code = frame.f_code  # type: ignore[attr-defined]
    lineno = frame.f_lineno  # type: ignore[attr-defined]
    line = linecache.getline(code.co_filename, lineno)
    match = _SELF_ATTR_RE.match(line)
    if match is not None:
        owner = frame.f_locals.get("self")  # type: ignore[attr-defined]
        if owner is not None:
            cls = type(owner)
            return f"{cls.__module__}.{cls.__qualname__}.{match.group(1)}"
    match = _NAME_RE.match(line)
    if match is not None:
        if code.co_name == "<module>":
            return f"{module}.{match.group(1)}"
        # co_qualname is 3.11+; the bare name is unique enough before.
        function = getattr(code, "co_qualname", code.co_name)
        return f"{module}.{function}.{match.group(1)}"
    return f"{module}:{lineno}"


def _call_site() -> str:
    """``file:line`` of the nearest frame outside this module."""
    frame = sys._getframe(1)
    while frame is not None and frame.f_globals.get("__name__") == __name__:
        frame = frame.f_back
    if frame is None:  # pragma: no cover - only if called at top level
        return "<unknown>"
    return f"{Path(frame.f_code.co_filename).name}:{frame.f_lineno}"


def install_from_env(environ: Mapping[str, str]) -> LockSanitizer | None:
    """Install a sanitizer iff :data:`ENV_FLAG` is set to ``1``."""
    if environ.get(ENV_FLAG) != "1":
        return None
    return LockSanitizer().install()


def static_lock_graph(root: str | Path) -> tuple[set[tuple[str, str]], set[str]]:
    """(order edges, known lock identities) derived from a source tree.

    Imported lazily by the test harness to compare against observation;
    kept here so the static and runtime sides share one entry point.
    """
    from repro.check.callgraph import CallGraph
    from repro.check.lockmodel import LockModel
    from repro.check.walker import iter_source_files

    sources = list(iter_source_files(Path(root)))
    graph = CallGraph.build(sources)
    model = LockModel.build(sources, graph)
    return set(model.order_edges), set(model.decls)


def static_order_edges(root: str | Path) -> set[tuple[str, str]]:
    """Just the statically derived lock-order edges for a source tree."""
    return static_lock_graph(root)[0]
