"""Concurrency heuristic: lock-owning classes must write under the lock.

Scope is the ``serve`` package — the one place where arbitrary HTTP
client threads call into shared registries, monitors, caches and metric
stores.  The heuristic:

1. A class that creates a ``threading.Lock``/``RLock``/``Condition``
   attribute in ``__init__`` (e.g. ``self._lock = threading.Lock()``)
   is *lock-owning* — it has declared that its mutable state is shared.
2. In every method of that class except ``__init__`` (construction
   happens-before publication), an assignment or augmented assignment
   to ``self.<attr>`` must sit lexically inside ``with self.<lock>:``.

Reads are not checked (snapshot-read-then-serve is the service's
documented pattern), and benign races (e.g. the registry's reload
rate-limit stamp) carry ``# repro: allow[concurrency]`` pragmas with
their justification.  This is a heuristic, not an escape analysis — it
catches the mutation pattern that has actually bitten this codebase,
at zero runtime cost.
"""

from __future__ import annotations

import ast

from repro.check.rules import Rule, dotted_path, register, resolve_imports
from repro.check.walker import SourceFile

#: Packages whose classes serve concurrent callers.
SCOPED_PACKAGES = frozenset({"serve", "cluster"})

#: threading constructors whose product guards shared state.
LOCK_CONSTRUCTORS = frozenset(
    {"threading.Lock", "threading.RLock", "threading.Condition"}
)


@register
class ConcurrencyRule(Rule):
    """Flags unguarded self-attribute writes in lock-owning classes."""

    name = "concurrency"

    def check(self, source: SourceFile) -> None:
        if source.package not in SCOPED_PACKAGES:
            return
        imports = resolve_imports(source.tree)
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef):
                self._check_class(source, node, imports)

    def _check_class(
        self, source: SourceFile, cls: ast.ClassDef, imports: dict[str, str]
    ) -> None:
        lock_attrs = _lock_attributes(cls, imports)
        if not lock_attrs:
            return
        for stmt in cls.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if stmt.name == "__init__":
                continue  # construction happens-before publication
            self._check_method(source, cls, stmt, lock_attrs)

    def _check_method(
        self,
        source: SourceFile,
        cls: ast.ClassDef,
        method: ast.FunctionDef | ast.AsyncFunctionDef,
        lock_attrs: frozenset[str],
    ) -> None:
        for body_stmt in method.body:
            self._walk(source, cls, method, body_stmt, lock_attrs, guarded=False)

    def _walk(
        self,
        source: SourceFile,
        cls: ast.ClassDef,
        method: ast.FunctionDef | ast.AsyncFunctionDef,
        node: ast.stmt,
        lock_attrs: frozenset[str],
        guarded: bool,
    ) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            holds = guarded or any(
                _is_self_attr(item.context_expr, lock_attrs)
                for item in node.items
            )
            for child in node.body:
                self._walk(source, cls, method, child, lock_attrs, holds)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scopes run elsewhere; out of heuristic reach
        if not guarded:
            for target_name in _unguarded_self_writes(node, lock_attrs):
                self.report(
                    source,
                    node,
                    "unguarded-write",
                    f"{cls.name}.{method.name} writes shared attribute "
                    f"'self.{target_name}' outside "
                    f"'with self.{sorted(lock_attrs)[0]}:'",
                )
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.stmt):
                self._walk(source, cls, method, child, lock_attrs, guarded)


def _lock_attributes(cls: ast.ClassDef, imports: dict[str, str]) -> frozenset[str]:
    """Names of self attributes bound to threading locks in __init__."""
    attrs: set[str] = set()
    for stmt in cls.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == "__init__":
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Assign):
                    continue
                if not isinstance(node.value, ast.Call):
                    continue
                path = dotted_path(node.value.func, imports)
                if path not in LOCK_CONSTRUCTORS:
                    continue
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        attrs.add(target.attr)
    return frozenset(attrs)


def _is_self_attr(expr: ast.expr, names: frozenset[str]) -> bool:
    return (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
        and expr.attr in names
    )


def _unguarded_self_writes(node: ast.stmt, lock_attrs: frozenset[str]) -> list[str]:
    """self attributes written by one statement (ignoring the locks)."""
    targets: list[ast.expr] = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, ast.AugAssign):
        targets = [node.target]
    elif isinstance(node, ast.AnnAssign) and node.value is not None:
        targets = [node.target]
    written: list[str] = []
    for target in targets:
        if isinstance(target, ast.Tuple):
            candidates = list(target.elts)
        else:
            candidates = [target]
        for candidate in candidates:
            if (
                isinstance(candidate, ast.Attribute)
                and isinstance(candidate.value, ast.Name)
                and candidate.value.id == "self"
                and candidate.attr not in lock_attrs
            ):
                written.append(candidate.attr)
    return written
