"""Interprocedural concurrency rule: guarded writes and lock ordering.

The original (PR 4) rule was *lexical*: a write had to sit inside
``with self._lock:`` in the same method, which flagged ``_locked_*``
helpers whose callers hold the lock and blessed public wrappers that
reach a helper lock-free.  This version reasons over the project call
graph (:mod:`repro.check.callgraph`) via :mod:`repro.check.lockmodel`:

``unguarded-write``
    In ``serve``/``cluster``/``summary``, a class that creates a
    ``threading.Lock``/``RLock``/``Condition`` attribute in ``__init__``
    must reach every write to its other ``self.`` attributes with a
    lock held on **every** call path from a public entry point.
    ``__init__`` and helpers reachable only from it are exempt
    (construction happens-before publication).  Reads stay unchecked
    (snapshot-read-then-serve is the documented pattern).

``lock-order-cycle``
    Project-wide, every acquisition records the set of locks that may
    already be held (lexically, or inferred along call chains).  The
    resulting order graph must be acyclic; an edge inside a strongly
    connected component is a potential ABBA deadlock and is reported at
    its acquisition site with a witness chain.

Benign races (e.g. the registry's reload rate-limit stamp) carry
``# repro: allow[concurrency]`` pragmas with their justification.  The
runtime complement is :mod:`repro.check.sanitizer`, which validates the
statically derived order graph against orders actually observed while
the test suite runs.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.check.callgraph import CallGraph
from repro.check.lockmodel import (
    LOCK_CONSTRUCTORS,  # noqa: F401  (re-exported; the historical home)
    LockModel,
    UnguardedWrite,
    _short,
)
from repro.check.rules import Rule, Violation, register
from repro.check.walker import SourceFile

#: Packages whose classes serve concurrent callers.
SCOPED_PACKAGES = frozenset({"serve", "cluster", "summary"})


@register
class ConcurrencyRule(Rule):
    """Unguarded shared writes and lock-order cycles, interprocedurally."""

    name = "concurrency"

    def __init__(self) -> None:
        super().__init__()
        self._by_path: dict[str, list[tuple[ast.AST, str, str]]] = {}

    def run(self, sources: Iterable[SourceFile]) -> list[Violation]:
        materialised = list(sources)
        graph = CallGraph.build(materialised)
        model = LockModel.build(materialised, graph)
        self._by_path = {}
        self._collect_unguarded(model)
        self._collect_cycles(model)
        return super().run(materialised)

    def check(self, source: SourceFile) -> None:
        for node, code, message in self._by_path.get(source.path, ()):
            self.report(source, node, code, message)

    # -- finding collection --------------------------------------------

    def _add(self, source: SourceFile, node: ast.AST, code: str, message: str) -> None:
        self._by_path.setdefault(source.path, []).append((node, code, message))

    def _collect_unguarded(self, model: LockModel) -> None:
        for cls_qualname in sorted(model.by_class):
            decl = model.decls[sorted(model.by_class[cls_qualname])[0]]
            if decl.source.package not in SCOPED_PACKAGES:
                continue
            for finding in model.unguarded_writes(cls_qualname):
                self._add(
                    finding.source,
                    finding.node,
                    "unguarded-write",
                    _unguarded_message(model, finding),
                )

    def _collect_cycles(self, model: LockModel) -> None:
        for (src, dst), cycle in sorted(model.cycle_edges().items()):
            edge = model.order_edges[(src, dst)]
            for (function, node), chain in zip(edge.sites, edge.chains):
                info = model.graph.functions[function]
                self._add(
                    info.source,
                    node,
                    "lock-order-cycle",
                    f"acquiring '{_short(dst)}' while '{_short(src)}' is held "
                    f"({chain}) closes the lock-order cycle "
                    f"{' -> '.join(_short(c) for c in cycle)} -> {_short(cycle[0])}: "
                    "two threads taking these locks in opposite orders deadlock — "
                    "impose one global order (or collapse to a single lock)",
                )


def _unguarded_message(model: LockModel, finding: UnguardedWrite) -> str:
    cls_name = finding.cls.rsplit(".", 1)[1]
    method = finding.function.rsplit(".", 1)[1]
    lock_attr = sorted(
        model.decls[ident].attr for ident in model.by_class[finding.cls]
    )[0]
    message = (
        f"{cls_name}.{method} writes shared attribute "
        f"'self.{finding.attr}' outside 'with self.{lock_attr}:'"
    )
    if finding.witness and len(finding.witness) > 1:
        message += (
            f" (reachable lock-free via {' -> '.join(finding.witness)})"
        )
    return message
