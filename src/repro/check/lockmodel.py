"""Interprocedural lock analysis over the project call graph.

:class:`LockModel` is what the rewritten concurrency rule and the
fork-safety extension consume.  From the parsed sources plus a
:class:`~repro.check.callgraph.CallGraph` it derives:

**Lock declarations.**  Every ``threading.Lock/RLock/Condition`` bound
to a ``self.`` attribute in an ``__init__`` (a *class lock*, identified
as ``module.Class.attr``) or to a module-level name (a *module lock*,
``module.name``).

**Per-function summaries.**  A lexical walk of each definition records,
with the set of locks held at that point (``with`` statements over
known locks): every acquisition site, every ``self.`` attribute write,
and every resolved call.  Descending into a nested ``def`` resets the
held-set — the closure runs later, under whatever locks its eventual
caller holds.

**Guard inference (must-held).**  Per lock-owning class, the lattice of
held-lock sets with *intersection* at joins: a method's entry set is
the intersection over all intra-class call sites of the caller's entry
set union the locks lexically held at the call.  Public methods (and
dunders other than ``__init__``) are entry points with the empty set —
they are callable from outside with nothing held — and so are private
methods no other method calls.  ``__init__`` is exempt (construction
happens-before publication), and so is any helper reachable *only*
from ``__init__``.  A write is unguarded when its lexical held-set
union its method's inferred entry set misses every class lock — this
clears ``_locked_*`` helpers called under the lock (the old lexical
rule's false positive) while still flagging a public wrapper that
reaches the same helper lock-free (its false negative).

**Lock-order graph (may-held).**  Project-wide, the dual lattice with
*union* at joins propagates "may be held on entry" sets along resolved
call edges; each acquisition of lock *b* while *a* may be held adds the
edge ``a → b``.  Any cycle among distinct locks in that graph is a
potential deadlock, reported with a witness acquisition chain.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.check.callgraph import CallGraph, FunctionInfo
from repro.check.rules import dotted_path, resolve_imports
from repro.check.walker import SourceFile

#: threading constructors whose product guards shared state.
LOCK_CONSTRUCTORS = frozenset(
    {"threading.Lock", "threading.RLock", "threading.Condition"}
)

#: Cap on reconstructed witness-chain length (cyclic witnesses).
MAX_CHAIN = 12


@dataclass(frozen=True)
class LockDecl:
    """One known lock: a class attribute or a module-level binding."""

    ident: str  # "repro.serve.cache.LRUCache._lock" / "repro.obs.tracer._counter_lock"
    owner: str | None  # owning class qualname, None for module locks
    attr: str  # attribute or binding name
    module: str
    node: ast.stmt  # the creating assignment
    source: SourceFile


@dataclass(frozen=True)
class Acquisition:
    """One ``with``-acquisition of a known lock."""

    lock: str  # LockDecl.ident
    function: str  # acquiring function qualname
    node: ast.expr  # the with-item context expression
    held: frozenset[str]  # locks lexically held at this site


@dataclass(frozen=True)
class WriteSite:
    """One ``self.<attr>`` write inside a lock-owning class's method."""

    function: str
    attr: str
    node: ast.stmt
    held: frozenset[str]


@dataclass(frozen=True)
class LockCall:
    """One resolved call with the locks lexically held around it."""

    caller: str
    callee: str
    node: ast.Call
    held: frozenset[str]


@dataclass(frozen=True)
class UnguardedWrite:
    """Guard-inference finding: a write no call path protects."""

    cls: str  # class qualname
    function: str
    attr: str
    node: ast.stmt
    source: SourceFile
    entry_held: frozenset[str]  # inferred must-held on method entry
    witness: tuple[str, ...]  # lock-free call path from an entry point


@dataclass
class OrderEdge:
    """Lock *a* is (somewhere) held while lock *b* is acquired."""

    src: str
    dst: str
    sites: list[tuple[str, ast.expr]] = field(default_factory=list)
    chains: list[str] = field(default_factory=list)  # witness acquisition chains


def _is_self_attr(expr: ast.expr) -> str | None:
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    ):
        return expr.attr
    return None


def _lock_decls(sources: Iterable[SourceFile]) -> dict[str, LockDecl]:
    """Every class-attribute and module-level lock in the project."""
    decls: dict[str, LockDecl] = {}

    def _value_is_lock(stmt: ast.stmt, imports: dict[str, str]) -> bool:
        value = getattr(stmt, "value", None)
        if not isinstance(value, ast.Call):
            return False
        return dotted_path(value.func, imports) in LOCK_CONSTRUCTORS

    def _targets(stmt: ast.stmt) -> list[ast.expr]:
        if isinstance(stmt, ast.Assign):
            return list(stmt.targets)
        if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            return [stmt.target]
        return []

    for source in sources:
        imports = resolve_imports(source.tree)
        for top in source.tree.body:
            if isinstance(top, (ast.Assign, ast.AnnAssign)):
                if not _value_is_lock(top, imports):
                    continue
                for target in _targets(top):
                    if isinstance(target, ast.Name):
                        ident = f"{source.module}.{target.id}"
                        decls[ident] = LockDecl(
                            ident, None, target.id, source.module, top, source
                        )
            elif isinstance(top, ast.ClassDef):
                owner = f"{source.module}.{top.name}"
                for stmt in top.body:
                    if (
                        isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                        and stmt.name == "__init__"
                    ):
                        for node in ast.walk(stmt):
                            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                                continue
                            if not _value_is_lock(node, imports):
                                continue
                            for target in _targets(node):
                                attr = _is_self_attr(target)
                                if attr is not None:
                                    ident = f"{owner}.{attr}"
                                    decls[ident] = LockDecl(
                                        ident, owner, attr, source.module, node, source
                                    )
    return decls


class LockModel:
    """Lock declarations, per-function summaries and derived graphs."""

    def __init__(self, graph: CallGraph, decls: dict[str, LockDecl]) -> None:
        self.graph = graph
        self.decls = decls
        self.by_class: dict[str, frozenset[str]] = {}
        for decl in decls.values():
            if decl.owner is not None:
                current = self.by_class.get(decl.owner, frozenset())
                self.by_class[decl.owner] = current | {decl.ident}
        self.acquisitions: list[Acquisition] = []
        self.writes: dict[str, list[WriteSite]] = {}  # function -> writes
        self.calls: list[LockCall] = []
        self.entry_may_held: dict[str, frozenset[str]] = {}
        self.order_edges: dict[tuple[str, str], OrderEdge] = {}
        self._may_witness: dict[tuple[str, str], str] = {}

    # -- construction --------------------------------------------------

    @classmethod
    def build(
        cls, sources: Iterable[SourceFile], graph: CallGraph | None = None
    ) -> "LockModel":
        materialised = list(sources)
        if graph is None:
            graph = CallGraph.build(materialised)
        model = cls(graph, _lock_decls(materialised))
        for info in graph.functions.values():
            model._summarise(info)
        model._propagate_may_held()
        model._build_order_edges()
        return model

    # -- per-function lexical walk --------------------------------------

    def _summarise(self, info: FunctionInfo) -> None:
        imports = resolve_imports(info.source.tree)
        class_locks = (
            self.by_class.get(f"{info.module}.{info.cls}", frozenset())
            if info.cls is not None
            else frozenset()
        )
        collect_writes = bool(class_locks) and info.name != "__init__"
        lock_attr_names = {self.decls[ident].attr for ident in class_locks}

        def lock_ident(expr: ast.expr) -> str | None:
            attr = _is_self_attr(expr)
            if attr is not None:
                candidate = f"{info.module}.{info.cls}.{attr}"
                return candidate if candidate in self.decls else None
            dotted = dotted_path(expr, imports)
            if dotted is None:
                return None
            if "." not in dotted:
                dotted = f"{info.module}.{dotted}"
            return dotted if dotted in self.decls else None

        def scan_calls(expr: ast.expr, held: frozenset[str]) -> None:
            if isinstance(expr, ast.Lambda):
                return  # runs later, under the eventual caller's locks
            if isinstance(expr, ast.Call):
                callee = self.graph.resolve_call(expr, info, imports)
                if callee is not None:
                    self.calls.append(LockCall(info.qualname, callee, expr, held))
            for child in ast.iter_child_nodes(expr):
                if isinstance(child, ast.expr):
                    scan_calls(child, held)

        def visit(stmt: ast.stmt, held: frozenset[str], nested: bool) -> None:
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                inner = held
                for item in stmt.items:
                    scan_calls(item.context_expr, inner)
                    ident = lock_ident(item.context_expr)
                    if ident is not None:
                        self.acquisitions.append(
                            Acquisition(ident, info.qualname, item.context_expr, inner)
                        )
                        inner = inner | {ident}
                for child in stmt.body:
                    visit(child, inner, nested)
                return
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # A nested def runs later: locks held here are not held there.
                for child in stmt.body:
                    visit(child, frozenset(), True)
                return
            if isinstance(stmt, ast.ClassDef):
                return
            if collect_writes and not nested:
                for attr in _self_writes(stmt, lock_attr_names):
                    self.writes.setdefault(info.qualname, []).append(
                        WriteSite(info.qualname, attr, stmt, held)
                    )
            descend(stmt, held, nested)

        def descend(node: ast.AST, held: frozenset[str], nested: bool) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.stmt):
                    visit(child, held, nested)
                elif isinstance(child, ast.expr):
                    scan_calls(child, held)
                else:  # ExceptHandler, match cases, ...
                    descend(child, held, nested)

        for stmt in info.node.body:
            visit(stmt, frozenset(), False)

    # -- may-held propagation and the lock-order graph ------------------

    def _propagate_may_held(self) -> None:
        """Union-lattice fixed point: locks possibly held entering each fn."""
        out_calls: dict[str, list[LockCall]] = {}
        for call in self.calls:
            out_calls.setdefault(call.caller, []).append(call)
        entry: dict[str, set[str]] = {}
        worklist = list(self.calls)
        while worklist:
            call = worklist.pop()
            contribution = set(call.held) | entry.get(call.caller, set())
            target = entry.setdefault(call.callee, set())
            new = contribution - target
            if not new:
                continue
            for lock in new:
                self._may_witness.setdefault((call.callee, lock), call.caller)
            target |= new
            worklist.extend(out_calls.get(call.callee, ()))
        self.entry_may_held = {
            name: frozenset(locks) for name, locks in entry.items()
        }

    def _witness_chain(self, function: str, lock: str) -> str:
        """`holder <- ... <- function`: how ``lock`` got to be held here."""
        chain = [function]
        current = function
        for _ in range(MAX_CHAIN):
            previous = self._may_witness.get((current, lock))
            if previous is None or previous in chain:
                break
            chain.append(previous)
            current = previous
        return " <- ".join(_short(name) for name in chain)

    def _build_order_edges(self) -> None:
        for acq in self.acquisitions:
            held = acq.held | self.entry_may_held.get(acq.function, frozenset())
            for src in held:
                if src == acq.lock:
                    continue  # RLock re-entry / same-attr nesting: not an order
                key = (src, acq.lock)
                edge = self.order_edges.get(key)
                if edge is None:
                    edge = self.order_edges[key] = OrderEdge(src, acq.lock)
                edge.sites.append((acq.function, acq.node))
                if src in acq.held:
                    edge.chains.append(f"held lexically in {_short(acq.function)}")
                else:
                    edge.chains.append(self._witness_chain(acq.function, src))

    def order_cycles(self) -> list[tuple[str, ...]]:
        """Strongly connected lock sets of size >= 2, sorted for stability."""
        adjacency: dict[str, set[str]] = {}
        for src, dst in self.order_edges:
            adjacency.setdefault(src, set()).add(dst)
            adjacency.setdefault(dst, set())
        sccs = _tarjan(adjacency)
        return sorted(tuple(sorted(scc)) for scc in sccs if len(scc) >= 2)

    def cycle_edges(self) -> dict[tuple[str, str], tuple[str, ...]]:
        """Order edges inside a cycle, mapped to their lock cycle."""
        result: dict[tuple[str, str], tuple[str, ...]] = {}
        for cycle in self.order_cycles():
            members = set(cycle)
            for key in self.order_edges:
                if key[0] in members and key[1] in members:
                    result[key] = cycle
        return result

    # -- guard inference (must-held) ------------------------------------

    def unguarded_writes(self, cls_qualname: str) -> list[UnguardedWrite]:
        """Writes in one lock-owning class that no call path guards."""
        locks = self.by_class.get(cls_qualname, frozenset())
        if not locks:
            return []
        methods = {
            name: info
            for name, info in self.graph.functions.items()
            if name.rpartition(".")[0] == cls_qualname
        }
        init = f"{cls_qualname}.__init__"
        intra = [
            call
            for call in self.calls
            if call.caller in methods and call.callee in methods
        ]
        called = {call.callee for call in intra}
        entries = {
            name
            for name, info in methods.items()
            if name != init
            and (not info.name.startswith("_") or _is_dunder(info.name) or name not in called)
        }
        # Methods reachable from an entry point without passing through
        # __init__; everything else (init-only helpers) is exempt.
        checked = set(entries)
        changed = True
        while changed:
            changed = False
            for call in intra:
                if call.caller in checked and call.callee not in checked:
                    if call.callee != init:
                        checked.add(call.callee)
                        changed = True
        # Must-held entry sets: intersection over non-__init__ call sites.
        held_on_entry: dict[str, frozenset[str]] = {
            name: (frozenset() if name in entries else locks) for name in methods
        }
        non_init = [call for call in intra if call.caller != init]
        changed = True
        while changed:
            changed = False
            for name in methods:
                if name in entries:
                    continue
                incoming = [call for call in non_init if call.callee == name]
                if not incoming:
                    continue
                new = frozenset(locks)
                for call in incoming:
                    new &= held_on_entry[call.caller] | call.held
                if new != held_on_entry[name]:
                    held_on_entry[name] = new
                    changed = True
        lock_free, parents = self._lock_free_reach(entries, non_init, locks)
        findings: list[UnguardedWrite] = []
        for name in sorted(checked):
            for write in self.writes.get(name, ()):
                effective = write.held | held_on_entry[name]
                if effective & locks:
                    continue
                witness: tuple[str, ...] = ()
                if name not in entries and name in lock_free:
                    witness = _trace(parents, name)
                findings.append(
                    UnguardedWrite(
                        cls=cls_qualname,
                        function=name,
                        attr=write.attr,
                        node=write.node,
                        source=methods[name].source,
                        entry_held=held_on_entry[name],
                        witness=witness,
                    )
                )
        return findings

    @staticmethod
    def _lock_free_reach(
        entries: set[str], calls: list[LockCall], locks: frozenset[str]
    ) -> tuple[set[str], dict[str, str]]:
        """Methods reachable from an entry with no class lock ever held."""
        reach = set(entries)
        parents: dict[str, str] = {}
        frontier = list(entries)
        while frontier:
            current = frontier.pop()
            for call in calls:
                if call.caller != current or call.callee in reach:
                    continue
                if call.held & locks:
                    continue
                reach.add(call.callee)
                parents[call.callee] = current
                frontier.append(call.callee)
        return reach, parents


def _self_writes(stmt: ast.stmt, lock_attrs: set[str]) -> list[str]:
    """self attributes written by one statement (ignoring the locks)."""
    targets: list[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, ast.AugAssign):
        targets = [stmt.target]
    elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        targets = [stmt.target]
    written: list[str] = []
    for target in targets:
        candidates = list(target.elts) if isinstance(target, ast.Tuple) else [target]
        for candidate in candidates:
            attr = _is_self_attr(candidate)
            if attr is not None and attr not in lock_attrs:
                written.append(attr)
    return written


def _is_dunder(name: str) -> bool:
    return name.startswith("__") and name.endswith("__")


def _short(qualname: str) -> str:
    """`Class.method` (or `module.function`) for messages."""
    parts = qualname.split(".")
    return ".".join(parts[-2:]) if len(parts) >= 2 else qualname


def _trace(parents: dict[str, str], leaf: str) -> tuple[str, ...]:
    chain = [leaf]
    current = leaf
    for _ in range(MAX_CHAIN):
        previous = parents.get(current)
        if previous is None or previous in chain:
            break
        chain.append(previous)
        current = previous
    return tuple(_short(name) for name in reversed(chain))


def _tarjan(adjacency: dict[str, set[str]]) -> list[list[str]]:
    """Iterative Tarjan SCC (no recursion: the graph is user input)."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = 0
    for root in adjacency:
        if root in index:
            continue
        work: list[tuple[str, iter]] = [(root, iter(sorted(adjacency[root])))]
        index[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, edges = work[-1]
            advanced = False
            for nxt in edges:
                if nxt not in index:
                    index[nxt] = low[nxt] = counter
                    counter += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, iter(sorted(adjacency[nxt]))))
                    advanced = True
                    break
                if nxt in on_stack:
                    low[node] = min(low[node], index[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                scc: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == node:
                        break
                sccs.append(scc)
    return sccs
