"""Hygiene rule: stdout discipline, mutable defaults, exception habits.

* ``print()`` in library code — stdout belongs to rendered artefacts
  and JSON results (the CI stray-stdout check diffs it byte-for-byte);
  diagnostics must route through :mod:`repro.obs.logs`.  Entry-point
  modules (``repro.cli``, ``repro.__main__``) are exempt: printing the
  result *is* their job.
* mutable default arguments — the classic shared-state trap; use
  ``None`` plus an in-body default.
* bare ``except:`` — catches ``KeyboardInterrupt``/``SystemExit`` and
  hides typos; name the exception types.
* swallowed ``except`` — a handler whose body is only ``pass``/``...``
  drops the error on the floor.  Deliberate drops (e.g. best-effort
  cleanup) carry a ``# repro: allow[hygiene]`` pragma with the reason.
"""

from __future__ import annotations

import ast

from repro.check.rules import Rule, register
from repro.check.walker import SourceFile

#: Modules whose purpose is writing to stdout.
PRINT_EXEMPT_MODULES = frozenset({"repro.cli", "repro.__main__"})

#: Constructors whose no-arg/any-arg results are mutable containers.
MUTABLE_FACTORIES = frozenset(
    {"list", "dict", "set", "bytearray", "deque", "defaultdict", "OrderedDict", "Counter"}
)


@register
class HygieneRule(Rule):
    """Flags prints, mutable defaults and bad except clauses."""

    name = "hygiene"

    def check(self, source: SourceFile) -> None:
        print_exempt = source.module in PRINT_EXEMPT_MODULES
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Call):
                if (
                    not print_exempt
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "print"
                ):
                    self.report(
                        source,
                        node,
                        "print",
                        "print() in library code pollutes stdout; route "
                        "diagnostics through repro.obs.logs.get_logger()",
                    )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                self._check_defaults(source, node)
            elif isinstance(node, ast.ExceptHandler):
                self._check_handler(source, node)

    def _check_defaults(self, source: SourceFile, node: ast.AST) -> None:
        args = node.args
        defaults = list(args.defaults) + [d for d in args.kw_defaults if d is not None]
        for default in defaults:
            if self._is_mutable(default):
                name = getattr(node, "name", "<lambda>")
                self.report(
                    source,
                    default,
                    "mutable-default",
                    f"mutable default argument in {name}(): evaluated "
                    "once at def time and shared across calls — default "
                    "to None and build inside the body",
                )

    @staticmethod
    def _is_mutable(node: ast.expr) -> bool:
        if isinstance(
            node,
            (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.SetComp, ast.DictComp),
        ):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in MUTABLE_FACTORIES
        )

    def _check_handler(self, source: SourceFile, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.report(
                source,
                node,
                "bare-except",
                "bare 'except:' catches KeyboardInterrupt and SystemExit; "
                "name the exception types",
            )
        if all(
            isinstance(stmt, ast.Pass)
            or (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
                and stmt.value.value is Ellipsis
            )
            for stmt in node.body
        ):
            self.report(
                source,
                node,
                "swallowed-except",
                "exception swallowed without handling or logging; log it, "
                "re-raise, or justify with '# repro: allow[hygiene]'",
            )
