"""Orchestration for ``repro.check``: walk, apply rules, ratchet.

:func:`run_check` is the whole programmatic API — the CLI, the CI gate
and the test suite all call it.  It parses every file under
``<root>/src/repro`` once, runs the selected rule families over the
shared parse results, resolves findings against the baseline and
returns a :class:`CheckResult` whose ``ok`` decides the exit code.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path

from repro.check.baseline import diff_against_baseline, load_baseline, save_baseline
from repro.check.rules import RULE_FACTORIES, Violation
from repro.check.walker import CheckConfigError, iter_source_files

# Importing the rule modules registers their factories.
from repro.check import concurrency, determinism, forksafety, hygiene, layering  # noqa: F401

#: Default baseline filename, resolved relative to the project root.
BASELINE_FILENAME = "check-baseline.json"


@dataclass(frozen=True)
class CheckResult:
    """Everything one check run produced."""

    root: Path
    rules: tuple[str, ...]
    files_scanned: int
    duration_seconds: float
    new: tuple[Violation, ...]
    baselined: tuple[Violation, ...]
    stale: tuple[dict, ...]
    suppressed: int
    recorded: int | None = None  # entries written by --baseline, else None

    @property
    def ok(self) -> bool:
        """True when nothing outside the baseline was found."""
        return not self.new

    def counts_by_rule(self) -> dict[str, int]:
        """New-violation counts per rule family."""
        counts: dict[str, int] = {}
        for violation in self.new:
            counts[violation.rule] = counts.get(violation.rule, 0) + 1
        return counts


def discover_root(start: Path | None = None) -> Path:
    """The project root: the nearest ancestor holding ``src/repro``.

    Starts from ``start`` (default: the current directory) and walks
    up; falls back to the tree this installed package sits in (an
    editable install's checkout).
    """
    candidates: list[Path] = []
    origin = (start or Path.cwd()).resolve()
    candidates.extend([origin, *origin.parents])
    package_dir = Path(__file__).resolve().parent  # .../src/repro/check
    candidates.extend(package_dir.parents)
    for candidate in candidates:
        if (candidate / "src" / "repro").is_dir():
            return candidate
    raise CheckConfigError(
        f"cannot find a project root (a directory containing src/repro) "
        f"above {origin}"
    )


def run_check(
    root: Path | None = None,
    rules: tuple[str, ...] | None = None,
    baseline_path: Path | None = None,
    record: bool = False,
) -> CheckResult:
    """Run the static checks and resolve them against the baseline.

    ``rules`` selects a subset of families (default: all registered).
    ``record=True`` rewrites the baseline from the current findings —
    the resulting :class:`CheckResult` then reports zero new violations
    by construction.
    """
    started = time.perf_counter()
    resolved_root = (root or discover_root()).resolve()
    src_root = resolved_root / "src" / "repro"
    if not src_root.is_dir():
        raise CheckConfigError(f"no src/repro under {resolved_root}")

    selected = rules if rules is not None else tuple(RULE_FACTORIES)
    unknown = [name for name in selected if name not in RULE_FACTORIES]
    if unknown:
        raise CheckConfigError(
            f"unknown rule families {unknown}; available: {sorted(RULE_FACTORIES)}"
        )

    sources = list(iter_source_files(src_root))
    violations: list[Violation] = []
    suppressed = 0
    for name in selected:
        rule = RULE_FACTORIES[name]()
        violations.extend(rule.run(sources))
        suppressed += rule.suppressed
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.code))

    resolved_baseline = baseline_path or (resolved_root / BASELINE_FILENAME)
    recorded: int | None = None
    if record:
        recorded = save_baseline(resolved_baseline, violations)
    diff = diff_against_baseline(violations, load_baseline(resolved_baseline))
    return CheckResult(
        root=resolved_root,
        rules=tuple(selected),
        files_scanned=len(sources),
        duration_seconds=time.perf_counter() - started,
        new=diff.new,
        baselined=diff.baselined,
        stale=diff.stale,
        suppressed=suppressed,
        recorded=recorded,
    )
