"""Project-wide call graph over the parsed source tree (stdlib ``ast``).

:class:`CallGraph` is the interprocedural substrate for the concurrency
and fork-safety rules: it indexes every module-level function and every
method of a top-level class under ``src/repro``, then resolves call
sites to those definitions **conservatively** — a call that cannot be
resolved to a known definition simply produces no edge, so analyses
built on the graph over-approximate reachability only through edges
that are certainly real.

Resolution covers the three shapes that matter in this codebase:

* ``self.helper()`` inside a method resolves to the same class's
  ``helper`` (base-class dispatch is deliberately not modelled);
* a bare ``helper()`` resolves to a module-level function of the same
  module, or through the file's imports (``from repro.x import helper``);
* dotted calls (``obs.counter()``, ``module.Class()``) resolve through
  the import map, chasing one level of re-export per hop (``repro.obs``
  re-exports ``counter`` from ``repro.obs.tracer``), with instantiation
  landing on the class's ``__init__`` when one is defined.

Calls inside *nested* functions are attributed to the enclosing
definition: for reachability that is exactly right (the closure can
only run if its definer ran), and the lock analyses reset their
held-set when they descend into a nested body.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.check.rules import dotted_path, resolve_imports
from repro.check.walker import SourceFile

#: Maximum re-export hops chased while resolving a dotted call target.
MAX_REEXPORT_HOPS = 8


@dataclass(frozen=True)
class FunctionInfo:
    """One known definition: a module function or a top-level-class method."""

    qualname: str  # "repro.serve.app.EstimationApp.drain" / "repro.cli.main"
    module: str
    cls: str | None  # owning class name, None for module functions
    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    source: SourceFile


@dataclass(frozen=True)
class CallSite:
    """One resolved call edge, anchored at its ``ast.Call`` node."""

    caller: str
    callee: str
    node: ast.Call


class CallGraph:
    """Known definitions plus the resolved call edges between them."""

    def __init__(
        self,
        functions: Mapping[str, FunctionInfo],
        classes: Mapping[str, tuple[str, ...]],
        imports_by_module: Mapping[str, Mapping[str, str]],
        sites: tuple[CallSite, ...],
    ) -> None:
        self.functions = dict(functions)
        self.classes = dict(classes)  # class qualname -> method names
        self._imports_by_module = {m: dict(v) for m, v in imports_by_module.items()}
        self.sites = sites
        self._out: dict[str, list[CallSite]] = {}
        self._in: dict[str, list[CallSite]] = {}
        for site in sites:
            self._out.setdefault(site.caller, []).append(site)
            self._in.setdefault(site.callee, []).append(site)

    # -- construction --------------------------------------------------

    @classmethod
    def build(cls, sources: Iterable[SourceFile]) -> "CallGraph":
        """Index definitions, then resolve every call site to an edge."""
        materialised = list(sources)
        functions: dict[str, FunctionInfo] = {}
        classes: dict[str, tuple[str, ...]] = {}
        imports_by_module: dict[str, dict[str, str]] = {}
        for source in materialised:
            imports_by_module[source.module] = resolve_imports(source.tree)
            for qualname, info in _definitions(source):
                functions[qualname] = info
            for node in source.tree.body:
                if isinstance(node, ast.ClassDef):
                    methods = tuple(
                        stmt.name
                        for stmt in node.body
                        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                    )
                    classes[f"{source.module}.{node.name}"] = methods
        graph = cls(functions, classes, imports_by_module, ())
        sites: list[CallSite] = []
        for info in functions.values():
            imports = imports_by_module[info.module]
            for call in _calls_in(info.node):
                callee = graph.resolve_call(call, info, imports)
                if callee is not None:
                    sites.append(CallSite(info.qualname, callee, call))
        graph.sites = tuple(sites)
        graph._out = {}
        graph._in = {}
        for site in graph.sites:
            graph._out.setdefault(site.caller, []).append(site)
            graph._in.setdefault(site.callee, []).append(site)
        return graph

    # -- resolution ----------------------------------------------------

    def resolve_call(
        self,
        call: ast.Call,
        context: FunctionInfo,
        imports: Mapping[str, str] | None = None,
    ) -> str | None:
        """The qualname a call resolves to in ``context``, or ``None``."""
        if imports is None:
            imports = self._imports_by_module.get(context.module, {})
        func = call.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
            and context.cls is not None
        ):
            candidate = f"{context.module}.{context.cls}.{func.attr}"
            return candidate if candidate in self.functions else None
        dotted = dotted_path(func, imports)
        if dotted is None:
            return None
        if "." not in dotted:
            # A bare local name: same-module function or class.
            dotted = f"{context.module}.{dotted}"
        return self.resolve_dotted(dotted)

    def resolve_dotted(self, dotted: str) -> str | None:
        """Resolve a canonical dotted path to a known definition.

        Chases ``from x import y`` re-export bindings hop by hop, so
        ``repro.obs.counter`` lands on ``repro.obs.tracer.counter``.
        A class target resolves to its ``__init__`` when defined.
        """
        for _ in range(MAX_REEXPORT_HOPS):
            if dotted in self.functions:
                return dotted
            if dotted in self.classes:
                init = f"{dotted}.__init__"
                return init if init in self.functions else None
            module, _, attr = dotted.rpartition(".")
            if not module or not attr:
                return None
            binding = self._imports_by_module.get(module, {}).get(attr)
            if binding is None or binding == dotted:
                return None
            dotted = binding
        return None

    # -- queries -------------------------------------------------------

    def callees(self, qualname: str) -> tuple[CallSite, ...]:
        """Outgoing call sites of one function."""
        return tuple(self._out.get(qualname, ()))

    def callers(self, qualname: str) -> tuple[CallSite, ...]:
        """Incoming call sites of one function."""
        return tuple(self._in.get(qualname, ()))

    def reachable_from(
        self, seeds: Iterable[str], skip: frozenset[str] = frozenset()
    ) -> set[str]:
        """Functions reachable from ``seeds`` along resolved call edges.

        ``skip`` names callees the traversal must not enter (used to
        sever the supervisor → ``worker_main`` edge at the fork
        boundary); the seeds themselves are always included.
        """
        seen = {seed for seed in seeds if seed in self.functions}
        frontier = list(seen)
        while frontier:
            current = frontier.pop()
            for site in self._out.get(current, ()):
                if site.callee in skip or site.callee in seen:
                    continue
                seen.add(site.callee)
                frontier.append(site.callee)
        return seen


def _definitions(source: SourceFile) -> Iterator[tuple[str, FunctionInfo]]:
    """(qualname, info) for module functions and top-level-class methods."""
    for node in source.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qualname = f"{source.module}.{node.name}"
            yield qualname, FunctionInfo(
                qualname, source.module, None, node.name, node, source
            )
        elif isinstance(node, ast.ClassDef):
            for stmt in node.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qualname = f"{source.module}.{node.name}.{stmt.name}"
                    yield qualname, FunctionInfo(
                        qualname, source.module, node.name, stmt.name, stmt, source
                    )


def _calls_in(node: ast.FunctionDef | ast.AsyncFunctionDef) -> Iterator[ast.Call]:
    """Every call in a definition's body, nested closures included."""
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            yield child
