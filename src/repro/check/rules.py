"""Rule framework for ``repro.check``.

A rule is a named family of checks over one :class:`SourceFile`; each
finding is a :class:`Violation` with a *family* (``layering``,
``determinism``, ``hygiene``, ``concurrency``), a *code* (the specific
check, e.g. ``hygiene/print``) and a drift-stable fingerprint that the
ratcheting baseline matches on.

Fingerprints deliberately exclude line numbers: they hash the rule
code, the file path, the flagged line's *text* and an occurrence index
among identical lines, so inserting unrelated code above a baselined
violation does not un-baseline it.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.check.walker import SourceFile


@dataclass(frozen=True)
class Violation:
    """One finding, pointing at a node in one file."""

    rule: str  # family: layering | determinism | hygiene | concurrency
    code: str  # specific check, e.g. "hygiene/print"
    path: str  # repo-relative posix path
    module: str  # dotted module name
    line: int
    col: int
    message: str
    snippet: str  # stripped source of the flagged line
    fingerprint: str = ""  # filled by finalize_fingerprints

    def to_dict(self) -> dict:
        """Plain-data form for the JSON reporter and the baseline."""
        return {
            "rule": self.rule,
            "code": self.code,
            "path": self.path,
            "module": self.module,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint,
        }


def finalize_fingerprints(violations: list[Violation]) -> list[Violation]:
    """Assign occurrence-indexed fingerprints, preserving order.

    Two violations of the same code on byte-identical lines of the same
    file are distinguished by their occurrence index (first, second, …
    in file order) — stable under any edit elsewhere in the file.
    """
    counters: dict[tuple[str, str, str], int] = {}
    out: list[Violation] = []
    for violation in violations:
        key = (violation.code, violation.path, violation.snippet)
        index = counters.get(key, 0)
        counters[key] = index + 1
        payload = "\x1f".join([violation.code, violation.path, violation.snippet, str(index)])
        digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()[:20]
        out.append(
            Violation(
                rule=violation.rule,
                code=violation.code,
                path=violation.path,
                module=violation.module,
                line=violation.line,
                col=violation.col,
                message=violation.message,
                snippet=violation.snippet,
                fingerprint=digest,
            )
        )
    return out


class Rule:
    """Base class: subclasses set ``name`` and implement :meth:`check`.

    :meth:`report` is the one way findings are emitted — it applies the
    pragma filter, so no rule can forget suppression support.
    """

    #: Family name; also the pragma token that suppresses the family.
    name: str = ""

    def __init__(self) -> None:
        self._found: list[Violation] = []
        self._suppressed = 0

    # -- subclass API --------------------------------------------------

    def check(self, source: SourceFile) -> None:
        """Inspect one file, calling :meth:`report` per finding."""
        raise NotImplementedError

    def report(
        self,
        source: SourceFile,
        node: ast.AST,
        code: str,
        message: str,
    ) -> None:
        """Emit a finding unless a pragma on the node's span allows it."""
        lineno = getattr(node, "lineno", 1)
        end = getattr(node, "end_lineno", None) or lineno
        full_code = f"{self.name}/{code}"
        if source.allowed((lineno, end), frozenset({self.name, full_code})):
            self._suppressed += 1
            return
        self._found.append(
            Violation(
                rule=self.name,
                code=full_code,
                path=source.path,
                module=source.module,
                line=lineno,
                col=getattr(node, "col_offset", 0),
                message=message,
                snippet=source.line_at(lineno),
            )
        )

    # -- driver API ----------------------------------------------------

    def run(self, sources: Iterable[SourceFile]) -> list[Violation]:
        """All findings over ``sources``, fingerprinted and ordered."""
        self._found = []
        self._suppressed = 0
        for source in sources:
            self.check(source)
        self._found.sort(key=lambda v: (v.path, v.line, v.col, v.code))
        return finalize_fingerprints(self._found)

    @property
    def suppressed(self) -> int:
        """Findings silenced by pragmas in the last :meth:`run`."""
        return self._suppressed


def resolve_imports(tree: ast.Module) -> dict[str, str]:
    """Map local names to the dotted path they were imported as.

    ``import numpy as np`` -> ``{"np": "numpy"}``;
    ``from datetime import datetime as dt`` -> ``{"dt": "datetime.datetime"}``.
    Used to resolve call sites like ``np.random.rand`` back to their
    canonical ``numpy.random.rand`` identity.
    """
    names: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                names[local] = target
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                names[local] = f"{node.module}.{alias.name}"
    return names


def dotted_path(node: ast.expr, imports: dict[str, str]) -> str | None:
    """Canonical dotted path of a Name/Attribute chain, or ``None``.

    ``np.random.default_rng`` with ``import numpy as np`` resolves to
    ``numpy.random.default_rng``; chains rooted in anything other than
    a plain name (calls, subscripts) resolve to ``None``.
    """
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    base = imports.get(current.id, current.id)
    parts.append(base)
    return ".".join(reversed(parts))


#: Registry of rule factories by family name, in report order.
RULE_FACTORIES: dict[str, Callable[[], Rule]] = {}


def register(factory: Callable[[], Rule]) -> Callable[[], Rule]:
    """Class decorator adding a rule family to the default set."""
    instance = factory()
    if not instance.name:
        raise ValueError(f"rule {factory!r} has no family name")
    RULE_FACTORIES[instance.name] = factory
    return factory
