"""Ratcheting baseline for ``repro.check``.

The committed ``check-baseline.json`` inventories accepted debt: a
violation whose fingerprint appears there passes; anything new fails.
The rule set therefore only ever tightens — fixing a violation and
re-recording shrinks the file, and nothing can be added without an
explicit ``repro check --baseline`` showing up in review.

Matching is by fingerprint (rule code + path + line text + occurrence
index), so unrelated edits that shift line numbers do not un-baseline
an entry.  Entries whose fingerprint no longer matches anything are
*stale* — reported so the file gets re-recorded, but never a failure.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.check.rules import Violation
from repro.check.walker import CheckConfigError

#: Schema version of the baseline file.
BASELINE_VERSION = 1


@dataclass(frozen=True)
class BaselineDiff:
    """Current violations split against a baseline."""

    new: tuple[Violation, ...]
    baselined: tuple[Violation, ...]
    stale: tuple[dict, ...]  # baseline entries matching nothing anymore


def load_baseline(path: Path) -> list[dict]:
    """Entries of a baseline file; an absent file is an empty baseline."""
    if not path.exists():
        return []
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise CheckConfigError(f"unparseable baseline {path}: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("version") != BASELINE_VERSION:
        raise CheckConfigError(
            f"baseline {path} has unsupported format; expected "
            f'{{"version": {BASELINE_VERSION}, "entries": [...]}}'
        )
    entries = payload.get("entries", [])
    if not isinstance(entries, list):
        raise CheckConfigError(f"baseline {path}: 'entries' must be a list")
    return entries


def save_baseline(path: Path, violations: list[Violation]) -> int:
    """Record every current violation as accepted debt; returns count."""
    entries = [
        {
            "fingerprint": violation.fingerprint,
            "code": violation.code,
            "path": violation.path,
            "line": violation.line,
            "message": violation.message,
        }
        for violation in sorted(
            violations, key=lambda v: (v.path, v.line, v.code, v.fingerprint)
        )
    ]
    payload = {"version": BASELINE_VERSION, "entries": entries}
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return len(entries)


def diff_against_baseline(
    violations: list[Violation], entries: list[dict]
) -> BaselineDiff:
    """Split current violations into new vs baselined, and find stale debt."""
    known = {
        entry.get("fingerprint")
        for entry in entries
        if isinstance(entry, dict) and entry.get("fingerprint")
    }
    new = tuple(v for v in violations if v.fingerprint not in known)
    baselined = tuple(v for v in violations if v.fingerprint in known)
    seen = {v.fingerprint for v in baselined}
    stale = tuple(
        entry
        for entry in entries
        if isinstance(entry, dict) and entry.get("fingerprint") not in seen
    )
    return BaselineDiff(new=new, baselined=baselined, stale=stale)
