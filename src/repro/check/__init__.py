"""Project-aware static analysis with a ratcheting baseline.

``repro.check`` is a dependency-free (stdlib-``ast``-only) analyzer
that enforces this repository's own correctness contracts — things no
off-the-shelf linter knows about:

``layering``
    The package DAG (``geo``/``stats``/``obs`` → ``data`` →
    ``synth``/``extraction``/``models`` → domain → ``experiments`` →
    ``pipeline`` → ``serve`` → entry points): no kernel ever imports
    upward into orchestration or service code.
``determinism``
    No wall-clock reads, process-global RNG use, unseeded generators,
    or kernel ``os.environ`` reads — the constructs that silently
    poison the content-addressed artifact cache and the golden pins.
``hygiene``
    No ``print()`` in library code (stdout belongs to artefacts; use
    :mod:`repro.obs.logs`), no mutable default arguments, no bare or
    swallowed ``except``.
``concurrency``
    Interprocedural, over the project call graph
    (:mod:`repro.check.callgraph`): in ``serve``/``cluster``/
    ``summary``, every write to a lock-owning class's shared state
    must be reached with the lock held on *every* call path from a
    public entry point, and the project-wide lock-order graph must be
    acyclic (an ABBA cycle is a potential deadlock).
``forksafety``
    No threads, locks or executors constructed at import time in
    modules reachable from ``repro.cluster``'s pre-fork import path,
    no wall-clock/per-process-entropy reads in worker-init code, and
    no lock acquired on both the supervisor and worker sides of
    ``fork()`` — the constructs that break or diverge forked workers.

The static lock-order graph is validated by execution:
:mod:`repro.check.sanitizer` (opt-in via ``REPRO_LOCK_SANITIZER=1``)
instruments lock acquisition while the test suite runs and fails on
any observed inversion of the derived order.

Violations resolve against the committed ``check-baseline.json``:
existing debt is inventoried there, anything new fails.  Inline
``# repro: allow[rule] reason`` pragmas suppress individual sites.

Run ``repro check`` (text) or ``repro check --format json`` (CI
artifact); re-record accepted debt with ``repro check --baseline``.
"""

from repro.check.baseline import (
    BASELINE_VERSION,
    BaselineDiff,
    diff_against_baseline,
    load_baseline,
    save_baseline,
)
from repro.check.layering import LAYER_DAG
from repro.check.report import JSON_REPORT_KEYS, render_json, render_text
from repro.check.rules import RULE_FACTORIES, Rule, Violation
from repro.check.runner import (
    BASELINE_FILENAME,
    CheckResult,
    discover_root,
    run_check,
)
from repro.check.walker import CheckConfigError, SourceFile, iter_source_files

__all__ = [
    "BASELINE_FILENAME",
    "BASELINE_VERSION",
    "BaselineDiff",
    "CheckConfigError",
    "CheckResult",
    "JSON_REPORT_KEYS",
    "LAYER_DAG",
    "RULE_FACTORIES",
    "Rule",
    "SourceFile",
    "Violation",
    "diff_against_baseline",
    "discover_root",
    "iter_source_files",
    "load_baseline",
    "render_json",
    "render_text",
    "run_check",
    "save_baseline",
]
