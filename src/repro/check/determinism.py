"""Determinism rule: keep nondeterminism out of cached computations.

The artifact cache (PR 1) addresses task outputs by the hash of their
config and inputs; the golden pins (PR 3) assert bit-identical results.
Both are silently poisoned by a kernel that reads the wall clock, pulls
entropy from module-level ``random`` state, or seeds a generator from
the OS.  This rule bans those constructs everywhere under ``repro``:

* wall-clock value reads — ``time.time()`` / ``time.time_ns()``,
  ``datetime.now()`` / ``utcnow()`` / ``today()``, ``date.today()``,
  and the integer-nanosecond ``time.monotonic_ns()`` /
  ``time.perf_counter_ns()``: their values look like unique ordered IDs
  and end up persisted as pseudo-timestamps, but differ per process.
  (Float ``time.monotonic`` / ``perf_counter`` stay legal: interval
  timing is inherently about the clock and never lands in an artifact.)
* the process-global ``random`` module — any ``random.<fn>()`` call,
  plus unseeded ``random.Random()`` and ``random.SystemRandom``.
* unseeded numpy entropy — ``np.random.default_rng()`` /
  ``SeedSequence()`` / bit generators with no seed argument, and every
  legacy ``np.random.<fn>`` module-level call.
* environment reads (``os.environ`` / ``os.getenv``) inside kernel
  packages whose outputs land in cache-hashed artifacts — a cache key
  cannot see the environment, so the body must not either.

Genuinely-benign sites (latency timestamps in ``serve``/``obs``, CLI
progress timing) carry an inline ``# repro: allow[determinism]`` pragma
with a justification.
"""

from __future__ import annotations

import ast

from repro.check.rules import Rule, dotted_path, register, resolve_imports
from repro.check.walker import SourceFile

#: Calls whose return value is the wall clock.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic_ns",
        "time.perf_counter_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: numpy.random constructors that are fine *when given seed material*.
SEEDABLE_CONSTRUCTORS = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.SeedSequence",
        "numpy.random.PCG64",
        "numpy.random.PCG64DXSM",
        "numpy.random.Philox",
        "numpy.random.MT19937",
        "numpy.random.SFC64",
        "numpy.random.RandomState",
    }
)

#: Packages whose function bodies feed cache-hashed artifacts: reading
#: the environment there makes outputs depend on state the cache key
#: never sees.
KERNEL_PACKAGES = frozenset(
    {
        "geo", "stats", "data", "core", "synth", "extraction", "models",
        "epidemic", "stream", "experiments",
    }
)


@register
class DeterminismRule(Rule):
    """Flags wall-clock reads, global RNG use and kernel env reads."""

    name = "determinism"

    def check(self, source: SourceFile) -> None:
        imports = resolve_imports(source.tree)
        kernel = source.package in KERNEL_PACKAGES
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Call):
                self._check_call(source, node, imports, kernel)
            elif isinstance(node, ast.Attribute) and kernel:
                path = dotted_path(node, imports)
                if path == "os.environ":
                    self.report(
                        source,
                        node,
                        "env-read",
                        "os.environ read in a kernel package: artifact "
                        "content would depend on state the cache key "
                        "cannot see — thread the value in as a parameter",
                    )

    def _check_call(
        self,
        source: SourceFile,
        node: ast.Call,
        imports: dict[str, str],
        kernel: bool,
    ) -> None:
        path = dotted_path(node.func, imports)
        if path is None:
            return
        has_args = bool(node.args or node.keywords)
        if path in WALL_CLOCK_CALLS:
            self.report(
                source,
                node,
                "wall-clock",
                f"{path}() reads the wall clock; inject a clock or "
                "timestamp parameter (time.monotonic/perf_counter are "
                "fine for intervals)",
            )
        elif path in SEEDABLE_CONSTRUCTORS:
            if not has_args:
                self.report(
                    source,
                    node,
                    "unseeded-rng",
                    f"{path}() without seed material draws OS entropy; "
                    "pass an explicit seed or accept an rng parameter",
                )
        elif path == "random.Random":
            if not has_args:
                self.report(
                    source,
                    node,
                    "unseeded-rng",
                    "random.Random() without a seed draws OS entropy; "
                    "pass an explicit seed",
                )
        elif path == "random.SystemRandom" or path.startswith("random.SystemRandom."):
            self.report(
                source,
                node,
                "unseeded-rng",
                "random.SystemRandom is nondeterministic by design; use "
                "a seeded random.Random or numpy Generator",
            )
        elif path.startswith("random."):
            self.report(
                source,
                node,
                "global-rng",
                f"{path}() uses the process-global random state; use a "
                "seeded random.Random or numpy Generator instance",
            )
        elif path == "numpy.random.Generator":
            pass  # takes a mandatory (already-seeded) bit generator
        elif path.startswith("numpy.random."):
            self.report(
                source,
                node,
                "global-rng",
                f"{path}() uses numpy's legacy global RNG; use a seeded "
                "np.random.default_rng(seed) Generator",
            )
        elif kernel and path == "os.getenv":
            self.report(
                source,
                node,
                "env-read",
                f"{path}() in a kernel package: artifact content would "
                "depend on state the cache key cannot see — thread the "
                "value in as a parameter",
            )
