"""Source discovery, parsing and pragma extraction for ``repro.check``.

The walker turns a source tree into :class:`SourceFile` objects — path,
dotted module name, parsed AST, raw lines and the suppression pragmas
found in comments.  Rules never touch the filesystem; they consume
``SourceFile`` instances, which also makes every rule trivially
testable from an inline string (:meth:`SourceFile.from_text`).

Pragma grammar
--------------
A violation is suppressed by a comment on any physical line its
flagged node spans::

    started_at = time.time()  # repro: allow[determinism] wall-clock uptime base

The bracket takes a comma-separated list of rule families or specific
codes (``allow[determinism]``, ``allow[hygiene/swallowed-except]``,
``allow[determinism,concurrency]``).  Text after the bracket is a
free-form justification — encouraged, never parsed.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

#: Matches one suppression comment; group 1 is the rule list.
PRAGMA_RE = re.compile(r"#\s*repro:\s*allow\[([^\]]+)\]")


class CheckConfigError(Exception):
    """Raised for unusable roots, unparseable baselines and bad rule names."""


@dataclass(frozen=True)
class SourceFile:
    """One parsed source file plus everything rules need to inspect it."""

    path: str
    module: str
    text: str
    tree: ast.Module
    lines: tuple[str, ...]
    #: line number -> set of allowed rule names (families or codes).
    pragmas: dict[int, frozenset[str]] = field(default_factory=dict)

    @property
    def package(self) -> str:
        """The top-level subpackage under ``repro`` (or ``<root>``)."""
        parts = self.module.split(".")
        if len(parts) == 1:  # repro itself
            return "<root>"
        if len(parts) == 2:
            # Ambiguous by name alone: "repro.geo" is the geo package's
            # __init__ (rules apply) but "repro.cli" is a root module
            # (exempt).  The filename settles it.
            if self.path.endswith("__init__.py"):
                return parts[1]
            return "<root>"
        return parts[1]

    @classmethod
    def from_text(cls, text: str, path: str = "<memory>", module: str = "repro._mem") -> "SourceFile":
        """Parse inline source — the unit-test entry point."""
        tree = ast.parse(text, filename=path)
        lines = tuple(text.splitlines())
        return cls(
            path=path,
            module=module,
            text=text,
            tree=tree,
            lines=lines,
            pragmas=extract_pragmas(lines),
        )

    def line_at(self, lineno: int) -> str:
        """The stripped source text of a 1-based line ('' out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def allowed(self, span: tuple[int, int], names: frozenset[str]) -> bool:
        """True when any line of ``span`` carries a pragma matching ``names``."""
        first, last = span
        for lineno in range(first, last + 1):
            granted = self.pragmas.get(lineno)
            if granted and granted & names:
                return True
        return False


def extract_pragmas(lines: tuple[str, ...]) -> dict[int, frozenset[str]]:
    """Per-line suppression pragmas, parsed from comments.

    A pragma on a code line covers that line; a pragma on a pure
    comment line also covers the line below it (for statements too long
    to carry a trailing comment).
    """
    pragmas: dict[int, frozenset[str]] = {}
    for index, line in enumerate(lines, start=1):
        if "#" not in line or "repro:" not in line:
            continue
        match = PRAGMA_RE.search(line)
        if not match:
            continue
        names = frozenset(
            name.strip() for name in match.group(1).split(",") if name.strip()
        )
        if not names:
            continue
        pragmas[index] = pragmas.get(index, frozenset()) | names
        if line.lstrip().startswith("#"):
            pragmas[index + 1] = pragmas.get(index + 1, frozenset()) | names
    return pragmas


def module_name_for(path: Path, src_root: Path) -> str:
    """Dotted module name of ``path`` relative to ``src_root``'s parent.

    ``src/repro/serve/app.py`` -> ``repro.serve.app``;
    ``src/repro/geo/__init__.py`` -> ``repro.geo``.
    """
    rel = path.relative_to(src_root.parent)
    parts = list(rel.with_suffix("").parts)
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def iter_source_files(src_root: Path) -> Iterator[SourceFile]:
    """Parse every ``*.py`` under ``src_root``, sorted for stable output.

    A file with a syntax error becomes a :class:`CheckConfigError` —
    the checker refuses to silently skip what it cannot parse.
    """
    for path in sorted(src_root.rglob("*.py")):
        text = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(text, filename=str(path))
        except SyntaxError as exc:
            raise CheckConfigError(f"cannot parse {path}: {exc}") from exc
        lines = tuple(text.splitlines())
        yield SourceFile(
            path=path.relative_to(src_root.parent.parent).as_posix(),
            module=module_name_for(path, src_root),
            text=text,
            tree=tree,
            lines=lines,
            pragmas=extract_pragmas(lines),
        )


def type_checking_spans(tree: ast.Module) -> list[tuple[int, int]]:
    """Line spans of ``if TYPE_CHECKING:`` bodies (type-only imports).

    Imports inside these blocks never execute at runtime, so the
    layering rule treats them as documentation, not dependencies.
    """
    spans: list[tuple[int, int]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.If):
            continue
        test = node.test
        is_tc = (isinstance(test, ast.Name) and test.id == "TYPE_CHECKING") or (
            isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING"
        )
        if is_tc and node.body:
            spans.append((node.body[0].lineno, max(s.end_lineno or s.lineno for s in node.body)))
    return spans
