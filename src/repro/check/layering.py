r"""Import-layering rule: enforce the package dependency DAG.

The architecture is a strict DAG of subpackages — kernels at the
bottom, orchestration above them, service/tooling on top::

    geo   stats   obs                 (L0: pure kernels + log substrate)
        \   |   /
          data                       (L1: records, gazetteer, I/O)
        /   |
    synth core                       (L2: generation + domain kernels
        \   |  \                          — World, labelling, accumulators)
         \  |   \
          extraction models          (L3: batch estimation adapters)
            \   |   /
    epidemic stream viz              (L4: domain extensions)
          |
      experiments                    (L5: paper artefacts)
          |
       pipeline                      (L6: cached DAG orchestration)
        /   |
  scenario  |                        (L6.2: declarative counterfactuals)
          |
       summary                       (L6.5: time-tiered summary store)
          |
        serve                        (L7: online service)
          |
       cluster                       (L7.5: pre-fork multi-worker serving)
          |
     cli / check / <root>            (L8: entry points and tooling)

An import is legal when the target package appears in the source
package's allowed set below (its transitive closure is spelled out
explicitly so the map doubles as documentation).  ``if TYPE_CHECKING:``
imports are exempt — they never execute, so they create no runtime
coupling (used by ``models.radiation_grid`` for the synth ``World``
annotation).
"""

from __future__ import annotations

import ast

from repro.check.rules import Rule, register
from repro.check.walker import SourceFile, type_checking_spans

#: Allowed ``repro.*`` dependencies per top-level subpackage.  ``<root>``
#: covers repro/__init__.py, cli.py and __main__.py, which may import
#: anything.  A package absent from this map is flagged until it is
#: deliberately placed in the DAG.
LAYER_DAG: dict[str, frozenset[str]] = {
    "geo": frozenset(),
    "stats": frozenset(),
    "obs": frozenset(),
    "check": frozenset(),  # the analyzer itself stays dependency-free
    "data": frozenset({"geo", "stats"}),
    "synth": frozenset({"geo", "stats", "data"}),
    "core": frozenset({"geo", "stats", "obs", "data"}),
    "extraction": frozenset({"geo", "stats", "obs", "data", "core"}),
    "models": frozenset({"geo", "stats", "obs", "data", "core", "extraction"}),
    "epidemic": frozenset(
        {"geo", "stats", "obs", "data", "core", "extraction", "models"}
    ),
    "stream": frozenset(
        {"geo", "stats", "obs", "data", "core", "extraction", "models"}
    ),
    "viz": frozenset({"geo", "stats", "obs", "data", "core", "extraction"}),
    "experiments": frozenset(
        {
            "geo", "stats", "obs", "data", "core", "synth", "extraction",
            "models", "epidemic", "stream", "viz",
        }
    ),
    "pipeline": frozenset(
        {
            "geo", "stats", "obs", "data", "core", "synth", "extraction",
            "models", "epidemic", "stream", "viz", "experiments",
        }
    ),
    "scenario": frozenset(
        {
            "geo", "stats", "obs", "data", "core", "synth", "extraction",
            "models", "epidemic", "stream", "viz", "experiments", "pipeline",
        }
    ),
    "summary": frozenset(
        {
            "geo", "stats", "obs", "data", "core", "synth", "extraction",
            "models", "epidemic", "stream", "viz", "experiments", "pipeline",
        }
    ),
    "serve": frozenset(
        {
            "geo", "stats", "obs", "data", "core", "synth", "extraction",
            "models", "epidemic", "stream", "viz", "experiments", "pipeline",
            "summary",
        }
    ),
    "cluster": frozenset(
        {
            "geo", "stats", "obs", "data", "core", "synth", "extraction",
            "models", "epidemic", "stream", "viz", "experiments", "pipeline",
            "summary", "serve",
        }
    ),
}


@register
class LayeringRule(Rule):
    """Flags ``repro.*`` imports that point upward in the layer DAG."""

    name = "layering"

    def check(self, source: SourceFile) -> None:
        package = source.package
        if package == "<root>":
            return  # entry points may import anything
        allowed = LAYER_DAG.get(package)
        type_only = type_checking_spans(source.tree)
        for node in ast.walk(source.tree):
            targets = _import_targets(node, source)
            if not targets:
                continue
            if any(start <= node.lineno <= end for start, end in type_only):
                continue
            for target in targets:
                if allowed is None:
                    self.report(
                        source,
                        node,
                        "unknown-package",
                        f"package '{package}' is not in the layering map — "
                        "place it in repro.check.layering.LAYER_DAG",
                    )
                    break
                if target == package:
                    continue
                if target == "<root>":
                    self.report(
                        source,
                        node,
                        "upward-import",
                        f"'{source.module}' imports the repro package root — "
                        "only entry points may; import the defining module",
                    )
                elif target not in allowed:
                    self.report(
                        source,
                        node,
                        "upward-import",
                        f"'{source.module}' ({package}) may not import "
                        f"'repro.{target}': allowed deps are "
                        f"{{{', '.join(sorted(allowed)) or 'none'}}}",
                    )


def _import_targets(node: ast.AST, source: SourceFile) -> list[str]:
    """Top-level ``repro`` subpackages referenced by one import node."""
    targets: list[str] = []
    if isinstance(node, ast.Import):
        for alias in node.names:
            parts = alias.name.split(".")
            if parts[0] == "repro":
                targets.append(parts[1] if len(parts) > 1 else "<root>")
    elif isinstance(node, ast.ImportFrom):
        if node.level:  # relative import: resolve against this module
            base = source.module.split(".")
            base = base[: len(base) - node.level]
            if node.module:
                base = base + node.module.split(".")
            if base and base[0] == "repro":
                targets.append(base[1] if len(base) > 1 else "<root>")
        elif node.module == "repro":
            for alias in node.names:
                # `from repro import X`: X is a subpackage when named in
                # the DAG, otherwise a root-level symbol re-export.
                targets.append(alias.name if alias.name in LAYER_DAG else "<root>")
        elif node.module and node.module.startswith("repro."):
            targets.append(node.module.split(".")[1])
    return targets
