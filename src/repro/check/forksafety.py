"""Fork-safety rule: keep threads and clocks out of pre-fork paths.

``repro.cluster`` forks workers after importing the serving stack.
``fork()`` copies exactly one thread into the child: any thread started
at import time silently does not exist in workers, and a lock created
at import time may be *held* by another thread at fork, deadlocking the
first child that touches it.  Worker warmup code has the complementary
hazard: wall-clock or OS-entropy reads there make freshly restarted
workers observably different from their siblings.

Three checks:

* ``prefork-thread`` — a ``threading`` primitive or executor
  constructed at *import time* (module body or class body, not inside a
  function) in any module reachable, via the ``repro``-internal import
  graph, from the ``repro.cluster`` package.  The import graph is
  rebuilt per run from the parsed sources (``if TYPE_CHECKING:``
  imports excluded — they never execute), so moving a module in or out
  of the pre-fork path updates the finding set automatically.
* ``worker-init-clock`` / ``worker-init-rng`` — wall-clock reads and
  unseeded/global RNG use inside worker-initialisation functions of the
  ``cluster`` package itself (``worker_main``, ``warmup*``, ``*_init``).
* ``fork-shared-lock`` — the cross-process hazard: a lock acquired by
  code reachable from the supervisor's call paths **and** from
  ``worker_main``'s.  After ``fork()`` the two sides hold independent
  copies of the lock, so it cannot actually serialise anything between
  them — worse, a copy forked while held wedges the child.  Reachability
  comes from the project call graph (:mod:`repro.check.callgraph`) with
  the supervisor's ``worker_main`` call severed — that edge *is* the
  fork boundary.  The finding is reported at the lock's creation site.

Genuinely-benign sites (e.g. ``repro.obs``'s module-level registry
locks, which are only ever held for microseconds around a dict write)
carry ``# repro: allow[forksafety]`` pragmas with a justification.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.check.callgraph import CallGraph
from repro.check.determinism import SEEDABLE_CONSTRUCTORS, WALL_CLOCK_CALLS
from repro.check.lockmodel import LockModel, _short
from repro.check.rules import Rule, Violation, dotted_path, register, resolve_imports
from repro.check.walker import SourceFile, type_checking_spans

#: The package whose import closure is the pre-fork path.
PREFORK_ROOT = "repro.cluster"

#: The module whose functions run on the supervisor side of fork().
SUPERVISOR_MODULE = "repro.cluster.supervisor"

#: The fork boundary: the one call that crosses into the child.
WORKER_ENTRY = "repro.cluster.worker.worker_main"

#: Constructors whose product must not cross a fork boundary.
THREAD_CONSTRUCTORS = frozenset(
    {
        "threading.Thread",
        "threading.Timer",
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
        "threading.Event",
        "threading.Barrier",
        "concurrent.futures.ThreadPoolExecutor",
        "concurrent.futures.ProcessPoolExecutor",
    }
)

#: Worker-initialisation function names in the cluster package.
def _is_worker_init(name: str) -> bool:
    return name == "worker_main" or name.startswith("warmup") or name.endswith("_init")


def _repro_import_targets(source: SourceFile) -> set[str]:
    """Dotted ``repro.*`` module names this file imports at runtime."""
    type_only = type_checking_spans(source.tree)
    targets: set[str] = set()
    for node in ast.walk(source.tree):
        if not isinstance(node, (ast.Import, ast.ImportFrom)):
            continue
        if any(start <= node.lineno <= end for start, end in type_only):
            continue
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "repro" or alias.name.startswith("repro."):
                    targets.add(alias.name)
        else:
            if node.level:  # relative: resolve against this module
                base = source.module.split(".")
                base = base[: len(base) - node.level]
                if node.module:
                    base = base + node.module.split(".")
                module = ".".join(base)
            else:
                module = node.module or ""
            if module == "repro" or module.startswith("repro."):
                targets.add(module)
                for alias in node.names:
                    # `from repro.x import y` may bind submodule x.y.
                    if alias.name != "*":
                        targets.add(f"{module}.{alias.name}")
    return targets


def reachable_modules(sources: Iterable[SourceFile]) -> set[str]:
    """Module names importable while ``repro.cluster`` imports.

    Importing ``repro.a.b`` also executes ``repro.a``'s ``__init__``,
    so every ancestor package of an edge target is an edge too.
    """
    by_module = {source.module: source for source in sources}
    edges: dict[str, set[str]] = {}
    for module, source in by_module.items():
        resolved: set[str] = set()
        for target in _repro_import_targets(source):
            parts = target.split(".")
            for depth in range(1, len(parts) + 1):
                prefix = ".".join(parts[:depth])
                if prefix in by_module:
                    resolved.add(prefix)
        edges[module] = resolved
    seeds = [
        module
        for module in by_module
        if module == PREFORK_ROOT or module.startswith(PREFORK_ROOT + ".")
    ]
    seen: set[str] = set(seeds)
    frontier = list(seeds)
    while frontier:
        current = frontier.pop()
        for target in edges.get(current, ()):
            if target not in seen:
                seen.add(target)
                frontier.append(target)
    return seen


def _import_time_calls(tree: ast.Module) -> Iterable[ast.Call]:
    """Call nodes that execute while the module imports.

    Everything under the module body *except* function and lambda
    bodies, which run later (if ever).  Decorators and argument
    defaults do evaluate at import time, so those subtrees stay in.
    """
    frontier: list[ast.AST] = list(tree.body)
    while frontier:
        node = frontier.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            frontier.extend(node.decorator_list)
            frontier.extend(node.args.defaults)
            frontier.extend(d for d in node.args.kw_defaults if d is not None)
            continue
        if isinstance(node, ast.Lambda):
            continue
        if isinstance(node, ast.Call):
            yield node
        frontier.extend(ast.iter_child_nodes(node))


@register
class ForkSafetyRule(Rule):
    """Flags fork hazards on the cluster's pre-fork import path."""

    name = "forksafety"

    def __init__(self) -> None:
        super().__init__()
        self._reachable: set[str] = set()
        self._shared_locks: dict[str, list[tuple[ast.AST, str]]] = {}

    def run(self, sources: Iterable[SourceFile]) -> list[Violation]:
        materialised = list(sources)
        self._reachable = reachable_modules(materialised)
        self._shared_locks = _fork_shared_locks(materialised)
        return super().run(materialised)

    def check(self, source: SourceFile) -> None:
        imports = resolve_imports(source.tree)
        if source.module in self._reachable:
            self._check_import_time(source, imports)
        if source.package == "cluster":
            self._check_worker_init(source, imports)
        for node, message in self._shared_locks.get(source.path, ()):
            self.report(source, node, "fork-shared-lock", message)

    def _check_import_time(self, source: SourceFile, imports: dict[str, str]) -> None:
        for call in _import_time_calls(source.tree):
            path = dotted_path(call.func, imports)
            if path in THREAD_CONSTRUCTORS:
                self.report(
                    source,
                    call,
                    "prefork-thread",
                    f"{path}() at import time in '{source.module}', "
                    f"which is on {PREFORK_ROOT}'s pre-fork import "
                    "path: threads and locks created before fork() "
                    "are copied into every worker in an undefined "
                    "state — construct it lazily, after the fork",
                )

    def _check_worker_init(self, source: SourceFile, imports: dict[str, str]) -> None:
        for node in ast.walk(source.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _is_worker_init(node.name):
                continue
            for call in ast.walk(node):
                if not isinstance(call, ast.Call):
                    continue
                path = dotted_path(call.func, imports)
                if path is None:
                    continue
                if path in WALL_CLOCK_CALLS:
                    self.report(
                        source,
                        call,
                        "worker-init-clock",
                        f"{path}() in worker-init '{node.name}': a "
                        "restarted worker would warm up against a "
                        "different clock than its siblings — take "
                        "timestamps from the supervisor or the stream",
                    )
                elif (
                    path in SEEDABLE_CONSTRUCTORS
                    and not (call.args or call.keywords)
                ) or path.startswith("random."):
                    self.report(
                        source,
                        call,
                        "worker-init-rng",
                        f"{path}() in worker-init '{node.name}' draws "
                        "per-process entropy: shards would diverge on "
                        "restart — derive seeds from the shard index",
                    )


def _fork_shared_locks(
    sources: list[SourceFile],
) -> dict[str, list[tuple[ast.AST, str]]]:
    """fork-shared-lock findings, grouped by the declaring file's path.

    A lock is cross-process-hazardous when at least one of its
    acquisition sites is reachable from the supervisor's functions and
    at least one from ``worker_main`` — computed on the call graph with
    the supervisor's call into :data:`WORKER_ENTRY` severed, because
    that edge is exactly where ``fork()`` splits the address space.
    """
    graph = CallGraph.build(sources)
    model = LockModel.build(sources, graph)
    supervisor_seeds = [
        name
        for name, info in graph.functions.items()
        if info.module == SUPERVISOR_MODULE
    ]
    if not supervisor_seeds or WORKER_ENTRY not in graph.functions:
        return {}
    supervisor_side = graph.reachable_from(
        supervisor_seeds, skip=frozenset({WORKER_ENTRY})
    )
    worker_side = graph.reachable_from([WORKER_ENTRY])
    acquirers: dict[str, set[str]] = {}
    for acq in model.acquisitions:
        acquirers.setdefault(acq.lock, set()).add(acq.function)
    findings: dict[str, list[tuple[ast.AST, str]]] = {}
    for ident in sorted(acquirers):
        functions = acquirers[ident]
        sup = sorted(functions & supervisor_side)
        wrk = sorted(functions & worker_side)
        if not sup or not wrk:
            continue
        decl = model.decls[ident]
        findings.setdefault(decl.source.path, []).append(
            (
                decl.node,
                f"lock '{ident}' is acquired on both sides of fork(): "
                f"supervisor path via {_short(sup[0])}, worker path via "
                f"{_short(wrk[0])} — after the fork each process holds an "
                "independent copy, so it serialises nothing between them "
                "(and a copy forked while held wedges the child); keep the "
                "state single-sided or move it into the artifact store",
            )
        )
    return findings
