"""Text and JSON reporters for ``repro.check`` results.

The text form is for humans at a terminal (one ``path:line:col`` line
per finding, grouped summary at the bottom); the JSON form is the CI
artifact — a single stable-schema object that downstream tooling can
diff across builds.
"""

from __future__ import annotations

import json

from repro.check.runner import CheckResult

#: Top-level keys every JSON report carries, in emission order.
JSON_REPORT_KEYS = (
    "version",
    "root",
    "files_scanned",
    "duration_seconds",
    "rules",
    "counts",
    "new_violations",
    "baselined_violations",
    "stale_baseline_entries",
    "ok",
)


def render_text(result: CheckResult, verbose_baselined: bool = False) -> str:
    """Human-readable report; new violations first, summary last."""
    lines: list[str] = []
    for violation in result.new:
        lines.append(
            f"{violation.path}:{violation.line}:{violation.col + 1}: "
            f"[{violation.code}] {violation.message}"
        )
        if violation.snippet:
            lines.append(f"    {violation.snippet}")
    if verbose_baselined and result.baselined:
        lines.append("baselined (accepted debt):")
        for violation in result.baselined:
            lines.append(
                f"  {violation.path}:{violation.line}: [{violation.code}] "
                f"{violation.message}"
            )
    counts = result.counts_by_rule()
    summary = ", ".join(f"{rule}={count}" for rule, count in sorted(counts.items()))
    lines.append(
        f"repro check: {len(result.new)} new violation(s), "
        f"{len(result.baselined)} baselined, {len(result.stale)} stale "
        f"baseline entr{'y' if len(result.stale) == 1 else 'ies'} "
        f"({result.files_scanned} files, {result.duration_seconds:.2f}s"
        + (f"; by rule: {summary}" if summary else "")
        + ")"
    )
    if result.stale:
        lines.append(
            "note: stale baseline entries match nothing anymore — "
            "re-record with 'repro check --baseline'"
        )
    return "\n".join(lines)


def render_json(result: CheckResult) -> str:
    """Machine-readable report with the stable key set JSON_REPORT_KEYS."""
    payload = {
        "version": 1,
        "root": str(result.root),
        "files_scanned": result.files_scanned,
        "duration_seconds": round(result.duration_seconds, 4),
        "rules": list(result.rules),
        "counts": {
            "new": len(result.new),
            "baselined": len(result.baselined),
            "stale_baseline_entries": len(result.stale),
            "suppressed_by_pragma": result.suppressed,
            "by_rule": result.counts_by_rule(),
        },
        "new_violations": [v.to_dict() for v in result.new],
        "baselined_violations": [v.to_dict() for v in result.baselined],
        "stale_baseline_entries": list(result.stale),
        "ok": result.ok,
    }
    return json.dumps(payload, indent=2, sort_keys=False)
