"""Command-line interface.

Usage (installed as ``repro`` or via ``python -m repro``)::

    repro generate --users 40000 --jobs 4 --out corpus.csv
    repro stats corpus.csv
    repro experiment all --users 40000
    repro experiment table2 --corpus corpus.csv
    repro pipeline run --users 40000 --jobs 4
    repro pipeline run --trace --profile
    repro trace show latest
    repro trace export latest --out pipeline.trace.json
    repro pipeline status
    repro pipeline clean
    repro serve --port 8000
    repro summary backfill --users 40000
    repro summary status
    repro epidemic --users 20000 --seed-city Sydney --model gravity2
    repro check --format json
    repro check --baseline

``experiment`` accepts either ``--corpus FILE`` (a CSV written by
``generate``) or ``--users N`` to synthesise a corpus on the fly.
``experiment all`` delegates to the cached DAG pipeline (see
``repro pipeline``); pass ``--no-cache`` for the direct in-process path.
All pipeline-backed commands honour ``--cache-dir`` (default
``~/.cache/repro`` or ``$REPRO_CACHE_DIR``).
"""

from __future__ import annotations

import argparse
import sys
import time

import repro
from repro.data.corpus import TweetCorpus
from repro.data.gazetteer import Scale
from repro.data.io import DataFormatError, read_tweets_csv, write_tweets_csv
from repro.geo.gazetteer import GazetteerSpecError
from repro.epidemic import arrival_times
from repro.experiments import (
    ExperimentContext,
    run_all_experiments,
    run_fig1,
    run_fig2,
    run_fig3,
    run_fig4,
    run_table1,
    run_table2,
)
from repro.models import GravityModel, RadiationModel
from repro.synth import SynthConfig, generate_corpus

EXPERIMENTS = ("table1", "fig1", "fig2", "fig3", "fig4", "table2", "all")


class CLIError(Exception):
    """A user-facing CLI failure: one message line, no traceback."""

    def __init__(self, message: str, code: int = 2) -> None:
        super().__init__(message)
        self.code = code


def _read_corpus(path: str) -> TweetCorpus:
    """Load a corpus CSV, mapping I/O failures to clean CLI errors."""
    try:
        return TweetCorpus.from_tweets(read_tweets_csv(path))
    except FileNotFoundError:
        raise CLIError(f"corpus file not found: {path}") from None
    except IsADirectoryError:
        raise CLIError(f"corpus path is a directory, not a file: {path}") from None
    except PermissionError:
        raise CLIError(f"corpus file is not readable: {path}") from None
    except DataFormatError as exc:
        raise CLIError(f"malformed corpus file: {exc}") from None
    except OSError as exc:
        raise CLIError(f"cannot read corpus file {path}: {exc}") from None


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Multi-scale Population and Mobility Estimation "
            "with Geo-tagged Tweets' (Liu et al., ICDE 2015)"
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {repro.__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="synthesise a geo-tagged tweet corpus")
    gen.add_argument("--users", type=int, default=40_000, help="number of users")
    gen.add_argument("--seed", type=int, default=20150413, help="RNG seed")
    gen.add_argument("--out", required=True, help="output CSV path")
    gen.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for sharded generation (output is "
        "bit-identical to --jobs 1)",
    )
    gen.add_argument(
        "--gazetteer", default="legacy",
        help="area system: 'legacy' or 'synth:<areas>[@<seed>]'",
    )

    stats = sub.add_parser("stats", help="print Table I statistics for a corpus CSV")
    stats.add_argument("corpus", help="corpus CSV path")

    exp = sub.add_parser("experiment", help="run a paper artefact reproduction")
    exp.add_argument("which", choices=EXPERIMENTS, help="which artefact")
    exp.add_argument("--corpus", help="corpus CSV (else synthesise)")
    exp.add_argument("--users", type=int, default=40_000, help="users to synthesise")
    exp.add_argument("--seed", type=int, default=20150413, help="RNG seed")
    exp.add_argument("--jobs", type=int, default=1, help="worker processes ('all' only)")
    exp.add_argument("--cache-dir", help="artifact cache directory ('all' only)")
    exp.add_argument(
        "--no-cache", action="store_true",
        help="bypass the pipeline cache and run 'all' directly in-process",
    )
    exp.add_argument(
        "--gazetteer", default="legacy",
        help="area system: 'legacy' or 'synth:<areas>[@<seed>]'",
    )

    pipe = sub.add_parser(
        "pipeline", help="cached DAG runner for the experiment suite"
    )
    pipe_sub = pipe.add_subparsers(dest="pipeline_command", required=True)
    prun = pipe_sub.add_parser("run", help="run (or cache-resolve) the suite DAG")
    prun.add_argument("--corpus", help="corpus CSV (else synthesise)")
    prun.add_argument("--users", type=int, default=40_000, help="users to synthesise")
    prun.add_argument("--seed", type=int, default=20150413, help="RNG seed")
    prun.add_argument("--jobs", type=int, default=1, help="parallel task/shard workers")
    prun.add_argument("--cache-dir", help="artifact cache directory")
    prun.add_argument(
        "--force", action="store_true", help="re-run every task, ignoring the cache"
    )
    prun.add_argument(
        "--targets", nargs="*", default=None, metavar="TASK",
        help="run only these tasks (plus their dependencies)",
    )
    prun.add_argument(
        "--trace", action="store_true",
        help="record a span trace into the run manifest "
        "(view with 'repro trace show <run-id>')",
    )
    prun.add_argument(
        "--profile", action="store_true",
        help="profile each executed task (cProfile); reports land next "
        "to the run manifest",
    )
    prun.add_argument(
        "--gazetteer", default="legacy",
        help="area system: 'legacy' or 'synth:<areas>[@<seed>]'",
    )
    pstatus = pipe_sub.add_parser(
        "status", help="per-task cache state for a configuration"
    )
    pstatus.add_argument("--corpus", help="corpus CSV (else synthesise)")
    pstatus.add_argument("--users", type=int, default=40_000, help="users to synthesise")
    pstatus.add_argument("--seed", type=int, default=20150413, help="RNG seed")
    pstatus.add_argument("--cache-dir", help="artifact cache directory")
    pstatus.add_argument(
        "--gazetteer", default="legacy",
        help="area system: 'legacy' or 'synth:<areas>[@<seed>]'",
    )
    pclean = pipe_sub.add_parser("clean", help="delete every cached artifact and run")
    pclean.add_argument("--cache-dir", help="artifact cache directory")

    trace = sub.add_parser(
        "trace", help="inspect span traces recorded by 'pipeline run --trace'"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    tshow = trace_sub.add_parser("show", help="render a run's span tree")
    tshow.add_argument("run_id", help="run id, or 'latest' for the newest run")
    tshow.add_argument("--cache-dir", help="artifact cache directory")
    texport = trace_sub.add_parser(
        "export", help="write a run's Chrome trace-event JSON"
    )
    texport.add_argument("run_id", help="run id, or 'latest' for the newest run")
    texport.add_argument(
        "--out", help="output path (default: <run-id>.trace.json)"
    )
    texport.add_argument("--cache-dir", help="artifact cache directory")

    serve = sub.add_parser(
        "serve", help="HTTP estimation service over the artifact cache"
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8000, help="bind port (0 = ephemeral)"
    )
    serve.add_argument("--cache-dir", help="artifact cache directory")
    serve.add_argument(
        "--monitor-scale",
        choices=[s.value for s in Scale],
        default=Scale.NATIONAL.value,
        help="area system for the live ingest monitor",
    )
    serve.add_argument(
        "--window-seconds", type=float, default=3600.0,
        help="sliding flow window for the ingest monitor",
    )
    serve.add_argument(
        "--poll-interval", type=float, default=2.0,
        help="minimum seconds between hot-reload checks",
    )
    serve.add_argument(
        "--max-body-kb", type=int, default=1024,
        help="largest accepted request body (KiB)",
    )
    serve.add_argument(
        "--no-summary", action="store_true",
        help="serve without the windowed summary store",
    )
    serve.add_argument(
        "--workers", type=int, default=1,
        help="pre-fork worker processes with consistent-hash sharded "
        "ingest (1 = classic single-process serving)",
    )
    serve.add_argument(
        "--gazetteer", default="legacy",
        help="area system: 'legacy' or 'synth:<areas>[@<seed>]'",
    )

    summary = sub.add_parser(
        "summary", help="multi-resolution time-tiered summary store"
    )
    summary_sub = summary.add_subparsers(dest="summary_command", required=True)
    sback = summary_sub.add_parser(
        "backfill", help="build summary tiles from a corpus (cached)"
    )
    sback.add_argument("--corpus", help="corpus CSV (else synthesise)")
    sback.add_argument("--users", type=int, default=40_000, help="users to synthesise")
    sback.add_argument("--seed", type=int, default=20150413, help="RNG seed")
    sback.add_argument(
        "--scale",
        choices=[s.value for s in Scale],
        default=Scale.NATIONAL.value,
        help="area system to summarise at",
    )
    sback.add_argument("--cache-dir", help="artifact cache directory")
    sback.add_argument("--jobs", type=int, default=1, help="parallel task workers")
    sback.add_argument(
        "--force", action="store_true", help="rebuild tiles, ignoring the cache"
    )
    sback.add_argument(
        "--gazetteer", default="legacy",
        help="area system: 'legacy' or 'synth:<areas>[@<seed>]'",
    )
    sstatus = summary_sub.add_parser(
        "status", help="tile inventory of a persisted summary namespace"
    )
    sstatus.add_argument(
        "--scale",
        choices=[s.value for s in Scale],
        default=Scale.NATIONAL.value,
        help="summary namespace to inspect",
    )
    sstatus.add_argument("--cache-dir", help="artifact cache directory")
    sstatus.add_argument(
        "--gazetteer", default="legacy",
        help="area system: 'legacy' or 'synth:<areas>[@<seed>]'",
    )

    epi = sub.add_parser("epidemic", help="disease-spread forecast on fitted mobility")
    epi.add_argument("--users", type=int, default=20_000, help="users to synthesise")
    epi.add_argument("--seed", type=int, default=20150413, help="RNG seed")
    epi.add_argument("--seed-city", default="Sydney", help="outbreak origin city")
    epi.add_argument(
        "--model",
        choices=("gravity2", "gravity4", "radiation"),
        default="gravity2",
        help="mobility model coupling the patches",
    )
    epi.add_argument("--runs", type=int, default=20, help="stochastic runs")
    epi.add_argument("--r0", type=float, default=2.5, help="basic reproduction number")

    scen = sub.add_parser(
        "scenario", help="declarative counterfactual scenarios on the pipeline DAG"
    )
    scen_sub = scen.add_subparsers(dest="scenario_command", required=True)

    def _scenario_run_options(parser: argparse.ArgumentParser) -> None:
        parser.add_argument("--config", action="append", default=[],
                            help="scenario config JSON file (repeatable)")
        parser.add_argument("--users", type=int, help="override corpus users")
        parser.add_argument("--seed", type=int, help="override corpus RNG seed")
        parser.add_argument(
            "--gazetteer",
            help="override area system: 'legacy' or 'synth:<areas>[@<seed>]'",
        )
        parser.add_argument("--jobs", type=int, default=1, help="parallel workers")
        parser.add_argument("--cache-dir", help="artifact cache directory")
        parser.add_argument(
            "--force", action="store_true", help="re-execute even on cache hits"
        )
        parser.add_argument(
            "--json", dest="json_out", metavar="PATH",
            help="also write the result as JSON ('-' for stdout)",
        )

    srun = scen_sub.add_parser(
        "run", help="run one scenario, cached on the artifact store"
    )
    srun.add_argument(
        "name", nargs="?", help="named scenario (see 'repro scenario list')"
    )
    _scenario_run_options(srun)
    scomp = scen_sub.add_parser(
        "compare", help="run scenarios as one DAG and diff them against the first"
    )
    scomp.add_argument("names", nargs="*", help="named scenarios (baseline first)")
    _scenario_run_options(scomp)
    scen_sub.add_parser("list", help="the named scenario library")

    gt = sub.add_parser(
        "groundtruth",
        help="validate the paper's census-prediction proposal against ground truth",
    )
    gt.add_argument("--users", type=int, default=20_000, help="users to synthesise")
    gt.add_argument("--seed", type=int, default=20150413, help="RNG seed")

    val = sub.add_parser("validate", help="cross-validated model comparison")
    val.add_argument("--corpus", help="corpus CSV (else synthesise)")
    val.add_argument("--users", type=int, default=20_000, help="users to synthesise")
    val.add_argument("--seed", type=int, default=20150413, help="RNG seed")
    val.add_argument("--folds", type=int, default=5, help="CV folds")

    dist = sub.add_parser("distance", help="multi-scale distance analysis")
    dist.add_argument("--corpus", help="corpus CSV (else synthesise)")
    dist.add_argument("--users", type=int, default=20_000, help="users to synthesise")
    dist.add_argument("--seed", type=int, default=20150413, help="RNG seed")

    temporal = sub.add_parser("temporal", help="hourly/weekly activity profiles")
    temporal.add_argument("--corpus", help="corpus CSV (else synthesise)")
    temporal.add_argument("--users", type=int, default=20_000, help="users to synthesise")
    temporal.add_argument("--seed", type=int, default=20150413, help="RNG seed")
    temporal.add_argument(
        "--diurnal", type=float, default=0.0,
        help="diurnal amplitude for synthesised corpora (0 = flat)",
    )

    report = sub.add_parser("report", help="full reproduction report (markdown)")
    report.add_argument("--corpus", help="corpus CSV (else synthesise)")
    report.add_argument("--users", type=int, default=40_000, help="users to synthesise")
    report.add_argument("--seed", type=int, default=20150413, help="RNG seed")
    report.add_argument("--out", help="write the report to this file (else stdout)")

    health = sub.add_parser("health", help="corpus hygiene: health report + bot scan")
    health.add_argument("corpus", help="corpus CSV path")
    health.add_argument(
        "--max-rate", type=float, default=30.0, help="bot rate threshold (tweets/day)"
    )

    anon = sub.add_parser("anonymize", help="pseudonymise + spatially coarsen a corpus")
    anon.add_argument("corpus", help="input corpus CSV path")
    anon.add_argument("--out", required=True, help="output corpus CSV path")
    anon.add_argument("--key", required=True, help="pseudonymisation key")
    anon.add_argument(
        "--coarsen-km", type=float, default=1.0,
        help="spatial rounding resolution in km (0 disables)",
    )

    check = sub.add_parser(
        "check",
        help="project-aware static analysis (layering, determinism, "
        "hygiene, interprocedural concurrency + lock ordering, fork "
        "safety) with a ratcheting baseline",
    )
    check.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (json is the CI artifact)",
    )
    check.add_argument(
        "--baseline", action="store_true",
        help="re-record every current violation as accepted debt",
    )
    check.add_argument(
        "--baseline-file",
        help="baseline path (default: <root>/check-baseline.json)",
    )
    check.add_argument(
        "--root",
        help="project root containing src/repro (default: auto-detect)",
    )
    check.add_argument(
        "--rules", nargs="*", metavar="FAMILY",
        help="rule families to run (default: all)",
    )
    check.add_argument(
        "--show-baselined", action="store_true",
        help="also list baselined (accepted) violations in text output",
    )

    density = sub.add_parser("densitymap", help="render the Fig 1 density map as a PPM image")
    density.add_argument("--corpus", help="corpus CSV (else synthesise)")
    density.add_argument("--users", type=int, default=40_000, help="users to synthesise")
    density.add_argument("--seed", type=int, default=20150413, help="RNG seed")
    density.add_argument("--out", required=True, help="output .ppm path")
    density.add_argument("--cell-km", type=float, default=25.0, help="grid cell size")
    return parser


def _load_or_generate(args: argparse.Namespace) -> TweetCorpus:
    if getattr(args, "corpus", None):
        print(f"loading corpus from {args.corpus} ...", file=sys.stderr)
        return _read_corpus(args.corpus)
    print(f"synthesising corpus ({args.users} users) ...", file=sys.stderr)
    config = SynthConfig(
        n_users=args.users,
        seed=args.seed,
        gazetteer=getattr(args, "gazetteer", "legacy"),
    )
    return generate_corpus(config).corpus


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.jobs < 1:
        print(f"repro generate: --jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    start = time.time()  # repro: allow[determinism] CLI progress timing
    result = generate_corpus(
        SynthConfig(n_users=args.users, seed=args.seed, gazetteer=args.gazetteer),
        jobs=args.jobs,
    )
    count = write_tweets_csv(result.corpus.iter_tweets(), args.out)
    print(
        f"wrote {count} tweets by {result.corpus.n_users} users to {args.out} "
        f"({time.time() - start:.1f}s)"  # repro: allow[determinism] CLI progress timing
    )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    corpus = _read_corpus(args.corpus)
    print(run_table1(corpus).render())
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    if args.which == "all" and not args.no_cache:
        from repro.pipeline import TaskFailure, run_all_experiments_cached

        if args.jobs < 1:
            print(
                f"repro experiment: --jobs must be >= 1, got {args.jobs}",
                file=sys.stderr,
            )
            return 2
        try:
            suite, run = run_all_experiments_cached(
                config=None if args.corpus else SynthConfig(
                    n_users=args.users, seed=args.seed, gazetteer=args.gazetteer
                ),
                corpus_path=args.corpus,
                cache_dir=args.cache_dir,
                jobs=args.jobs,
                gazetteer=args.gazetteer,
            )
        except TaskFailure as failure:
            print(
                f"experiment suite failed at task '{failure.task_name}': "
                f"{failure.cause!r}",
                file=sys.stderr,
            )
            return 1
        print(suite.render())
        print(run.manifest.summary(), file=sys.stderr)
        return 0
    corpus = _load_or_generate(args)
    if args.which == "all":
        print(run_all_experiments(corpus, gazetteer=args.gazetteer).render())
        return 0
    context = ExperimentContext(corpus, gazetteer=args.gazetteer)
    runners = {
        "table1": lambda: run_table1(corpus),
        "fig1": lambda: run_fig1(corpus),
        "fig2": lambda: run_fig2(corpus),
        "fig3": lambda: run_fig3(context),
        "fig4": lambda: run_fig4(context),
        "table2": lambda: run_table2(context),
    }
    print(runners[args.which]().render())
    return 0


def _pipeline_status_text(pipeline, store) -> str:
    """Per-task cache state, resolving keys as far as the cache allows."""
    digests: dict[str, str] = {}
    lines = [
        f"cache dir: {store.root}",
        f"  {'task':<12s} {'state':<8s} {'cache key':<14s} {'artifact':<14s}",
    ]
    for task in pipeline.topological_order():
        if all(dep in digests for dep in task.deps):
            key = task.cache_key(digests)
            digest = store.lookup(key)
            if digest is not None:
                digests[task.name] = digest
                state, key_text, digest_text = "cached", key[:12], digest[:12]
            else:
                state, key_text, digest_text = "missing", key[:12], "-"
        else:
            # An upstream miss means this task's inputs (hence its key)
            # are unknown until the upstream body runs.
            state, key_text, digest_text = "stale", "-", "-"
        lines.append(f"  {task.name:<12s} {state:<8s} {key_text:<14s} {digest_text:<14s}")
    cached = len(digests)
    lines.append(f"  {cached}/{len(pipeline)} tasks cached for this configuration")
    return "\n".join(lines)


def _cmd_pipeline(args: argparse.Namespace) -> int:
    from repro.pipeline import (
        ARTEFACT_TASKS,
        ArtifactStore,
        PipelineError,
        TaskFailure,
        run_suite,
        suite_pipeline,
    )

    if getattr(args, "jobs", 1) < 1:
        print(f"repro pipeline: --jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    store = ArtifactStore(args.cache_dir) if args.cache_dir else ArtifactStore()
    if args.pipeline_command == "clean":
        removed = store.clear()
        print(f"removed {removed} cache files from {store.root}")
        return 0

    config = None
    if not args.corpus:
        config = SynthConfig(
            n_users=args.users, seed=args.seed, gazetteer=args.gazetteer
        )
    if args.pipeline_command == "status":
        pipeline = suite_pipeline(
            config=config, corpus_path=args.corpus, gazetteer=args.gazetteer
        )
        print(_pipeline_status_text(pipeline, store))
        return 0

    targets = tuple(args.targets) if args.targets else None
    try:
        suite, run = run_suite(
            config=config,
            corpus_path=args.corpus,
            store=store,
            jobs=args.jobs,
            force=args.force,
            targets=targets,
            trace=args.trace,
            profile=args.profile,
            gazetteer=args.gazetteer,
        )
    except TaskFailure as failure:
        print(
            f"pipeline failed at task '{failure.task_name}': {failure.cause!r}",
            file=sys.stderr,
        )
        return 1
    except PipelineError as error:
        print(f"repro pipeline: {error}", file=sys.stderr)
        return 2
    if suite is not None:
        print(suite.render())
    else:
        requested = set(targets or ARTEFACT_TASKS)
        rendered = [
            run.artifact(name).render()
            for name in ARTEFACT_TASKS
            if name in requested and name in run.digests
        ]
        if rendered:
            rule = "\n" + "=" * 78 + "\n"
            print(rule.join(rendered))
    print(run.manifest.summary(), file=sys.stderr)
    manifest_path = store.runs_dir / run.manifest.run_id / "manifest.json"
    print(f"manifest: {manifest_path}", file=sys.stderr)
    if args.trace:
        print(
            f"trace: repro trace show {run.manifest.run_id}", file=sys.stderr
        )
    return 0


def _resolve_trace_run(store, run_id: str):
    """A run's manifest by id (or 'latest'), failing with clean CLI errors."""
    if run_id == "latest":
        run_ids = store.run_ids()
        if not run_ids:
            raise CLIError(f"no recorded runs under {store.runs_dir}")
        run_id = run_ids[-1]
    manifest = store.load_run(run_id)
    if manifest is None:
        raise CLIError(f"no run {run_id!r} under {store.runs_dir}")
    if not manifest.trace:
        raise CLIError(
            f"run {manifest.run_id} has no recorded trace; "
            "re-run with 'repro pipeline run --trace'"
        )
    return manifest


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.pipeline import ArtifactStore

    store = ArtifactStore(args.cache_dir) if args.cache_dir else ArtifactStore()
    manifest = _resolve_trace_run(store, args.run_id)
    if args.trace_command == "show":
        print(f"run {manifest.run_id} — {len(manifest.trace)} spans")
        print(obs.render_span_tree(manifest.trace))
        return 0
    out = args.out or f"{manifest.run_id}.trace.json"
    path = obs.write_chrome_trace(manifest.trace, out, run_id=manifest.run_id)
    print(f"wrote {len(manifest.trace)} spans to {path}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.pipeline import ArtifactStore
    from repro.serve import (
        RegistryError,
        create_app,
        create_server,
        install_signal_handlers,
    )

    if args.workers > 1:
        return _cmd_serve_cluster(args)
    store = ArtifactStore(args.cache_dir) if args.cache_dir else ArtifactStore()
    try:
        app = create_app(
            store,
            monitor_scale=Scale(args.monitor_scale),
            window_seconds=args.window_seconds,
            poll_interval=args.poll_interval,
            max_body_bytes=args.max_body_kb * 1024,
            with_summary=not args.no_summary,
            gazetteer=args.gazetteer,
        )
    except RegistryError as error:
        print(f"repro serve: {error}", file=sys.stderr)
        return 2
    server = create_server(args.host, args.port, app)
    install_signal_handlers(server)
    snapshot = app.registry.snapshot
    print(
        f"serving run {snapshot.run_id} "
        f"({snapshot.n_tweets} tweets, {snapshot.n_users} users) "
        f"on http://{args.host}:{server.port} — SIGINT/SIGTERM to stop",
        file=sys.stderr,
    )
    try:
        server.serve_forever()
    finally:
        server.server_close()
    print("shutdown complete: in-flight requests drained", file=sys.stderr)
    return 0


def _cmd_serve_cluster(args: argparse.Namespace) -> int:
    from repro.cluster import ClusterConfig, ClusterSupervisor

    config = ClusterConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        cache_dir=args.cache_dir,
        monitor_scale=Scale(args.monitor_scale),
        gazetteer=args.gazetteer,
        window_seconds=args.window_seconds,
        poll_interval=args.poll_interval,
        max_body_bytes=args.max_body_kb * 1024,
        with_summary=not args.no_summary,
    )
    supervisor = ClusterSupervisor(config)
    supervisor.start()
    if not supervisor.wait_ready(timeout=60.0):
        print("repro serve: workers failed to warm up", file=sys.stderr)
        supervisor.stop()
        return 2
    print(
        f"serving with {args.workers} workers on "
        f"http://{args.host}:{supervisor.port} "
        f"(shards: {', '.join(supervisor.shard_addresses.values())}) "
        "— SIGINT/SIGTERM to stop",
        file=sys.stderr,
    )
    supervisor.run()
    print("shutdown complete: workers drained", file=sys.stderr)
    return 0


def _cmd_summary(args: argparse.Namespace) -> int:
    from repro.core.world import World
    from repro.data.gazetteer import gazetteer_from_spec
    from repro.pipeline import ArtifactStore, TaskFailure
    from repro.summary import SummaryStore, backfill_summary

    store = ArtifactStore(args.cache_dir) if args.cache_dir else ArtifactStore()
    scale = Scale(args.scale)
    resolved = gazetteer_from_spec(args.gazetteer)
    if resolved.is_legacy:
        namespace = scale.value
    else:
        namespace = f"{resolved.namespace_slug}-{scale.value}"
    summary = SummaryStore(
        World.from_scale(scale, gazetteer=resolved),
        artifacts=store,
        namespace=namespace,
    )

    if args.summary_command == "status":
        recovered = summary.recover()
        stats = summary.stats()
        print(f"cache dir: {store.root}")
        print(f"namespace: {namespace} ({recovered} persisted tiles)")
        for tier, count in stats["tiles"].items():
            print(f"  {tier:<8s} {count} tiles")
        watermark = stats["watermark"]
        print(f"  watermark: {watermark if watermark is not None else 'none'}")
        return 0

    if args.jobs < 1:
        raise CLIError(f"--jobs must be >= 1, got {args.jobs}")
    config = None
    if not args.corpus:
        config = SynthConfig(
            n_users=args.users, seed=args.seed, gazetteer=args.gazetteer
        )
        print(f"synthesising corpus ({args.users} users) ...", file=sys.stderr)
    summary.recover()
    try:
        tiles, installed, run = backfill_summary(
            store,
            summary,
            config=config,
            corpus_path=args.corpus,
            scale=scale,
            jobs=args.jobs,
            force=args.force,
            gazetteer=args.gazetteer,
        )
    except TaskFailure as failure:
        print(
            f"backfill failed at task '{failure.task_name}': {failure.cause!r}",
            file=sys.stderr,
        )
        return 1
    span = tiles.span
    span_text = f"[{span[0]}, {span[1]})" if span else "empty"
    print(
        f"backfilled {installed} minute tiles ({tiles.n_tweets} tweets, "
        f"{tiles.n_transitions} transitions) spanning {span_text}"
    )
    print(run.manifest.summary(), file=sys.stderr)
    return 0


def _cmd_epidemic(args: argparse.Namespace) -> int:
    import numpy as np

    corpus = _load_or_generate(args)
    context = ExperimentContext(corpus)
    network = context.network(Scale.NATIONAL, args.model)
    gamma = 0.2
    beta = args.r0 * gamma
    print(
        f"Seeding outbreak in {args.seed_city} (R0={args.r0}, model={args.model}) ...",
        file=sys.stderr,
    )
    summary = arrival_times(
        network,
        beta=beta,
        gamma=gamma,
        seed_patch=args.seed_city,
        n_runs=args.runs,
        rng=np.random.default_rng(args.seed),
    )
    print(summary.render())
    return 0


def _scenario_configs(args: argparse.Namespace, names: list[str]):
    """Resolve named + file-based scenario configs with CLI overrides."""
    import json

    from repro.scenario import ScenarioConfig, ScenarioConfigError, named_scenario

    configs = []
    try:
        for name in names:
            configs.append(named_scenario(name))
        for path in args.config:
            try:
                with open(path, encoding="utf-8") as handle:
                    payload = json.load(handle)
            except FileNotFoundError:
                raise CLIError(f"scenario config not found: {path}") from None
            except json.JSONDecodeError as error:
                raise CLIError(f"invalid JSON in {path}: {error}") from None
            configs.append(ScenarioConfig.from_dict(payload))
    except ScenarioConfigError as error:
        raise CLIError(str(error)) from error
    return [
        config.with_overrides(
            users=args.users, seed=args.seed, gazetteer=args.gazetteer
        )
        for config in configs
    ]


def _emit_scenario_json(args: argparse.Namespace, payload: dict) -> None:
    import json

    if not args.json_out:
        return
    text = json.dumps(payload, indent=2, allow_nan=False)
    if args.json_out == "-":
        print(text)
    else:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.json_out}", file=sys.stderr)


def _cmd_scenario(args: argparse.Namespace) -> int:
    from repro.pipeline import ArtifactStore, TaskFailure
    from repro.scenario import (
        ScenarioConfigError,
        run_comparison,
        run_scenario,
        scenario_descriptions,
    )

    if args.scenario_command == "list":
        descriptions = scenario_descriptions()
        width = max(len(name) for name in descriptions)
        for name, description in descriptions.items():
            print(f"{name:<{width + 2}s}{description}")
        return 0

    if getattr(args, "jobs", 1) < 1:
        raise CLIError(f"--jobs must be >= 1, got {args.jobs}")
    store = ArtifactStore(args.cache_dir) if args.cache_dir else ArtifactStore()

    if args.scenario_command == "run":
        names = [args.name] if args.name else []
        configs = _scenario_configs(args, names)
        if len(configs) != 1:
            raise CLIError("scenario run takes exactly one scenario (name or --config)")
        try:
            result, run = run_scenario(
                configs[0], store=store, jobs=args.jobs, force=args.force
            )
        except TaskFailure as error:
            raise CLIError(f"scenario failed: {error}", code=1) from error
        print(result.render())
        print(run.manifest.summary(), file=sys.stderr)
        _emit_scenario_json(args, result.to_json_dict())
        return 0

    configs = _scenario_configs(args, list(args.names))
    try:
        comparison, run = run_comparison(
            tuple(configs), store=store, jobs=args.jobs, force=args.force
        )
    except ScenarioConfigError as error:
        raise CLIError(str(error)) from error
    except TaskFailure as error:
        raise CLIError(f"scenario comparison failed: {error}", code=1) from error
    print(comparison.render())
    print(run.manifest.summary(), file=sys.stderr)
    _emit_scenario_json(args, comparison.to_json_dict())
    return 0


def _cmd_groundtruth(args: argparse.Namespace) -> int:
    from repro.experiments.ground_truth import run_ground_truth_validation

    print(f"synthesising corpus ({args.users} users) ...", file=sys.stderr)
    result = generate_corpus(SynthConfig(n_users=args.users, seed=args.seed))
    print(run_ground_truth_validation(result).render())
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.models import k_fold_cross_validate

    corpus = _load_or_generate(args)
    context = ExperimentContext(corpus)
    print(f"{args.folds}-fold cross-validated Pearson r (held-out pairs):")
    header = f"{'':14s}{'Gravity 4Param':>18s}{'Gravity 2Param':>18s}{'Radiation':>18s}"
    print(header)
    for scale in Scale:
        flows = context.flows(scale)
        pairs = flows.pairs()
        row = f"{scale.value.capitalize():14s}"
        for model in (GravityModel(4), GravityModel(2), RadiationModel.from_flows(flows)):
            result = k_fold_cross_validate(
                model, pairs, k=args.folds, rng=np.random.default_rng(0)
            )
            row += f"{result.mean_pearson:>18.3f}"
        print(row)
    return 0


def _cmd_distance(args: argparse.Namespace) -> int:
    from repro.experiments.distance import run_distance_analysis

    corpus = _load_or_generate(args)
    print(run_distance_analysis(corpus).render())
    return 0


def _cmd_temporal(args: argparse.Namespace) -> int:
    from repro.extraction.temporal import day_night_ratio, hourly_profile, weekly_profile

    if getattr(args, "corpus", None):
        corpus = _load_or_generate(args)
    else:
        print(f"synthesising corpus ({args.users} users) ...", file=sys.stderr)
        corpus = generate_corpus(
            SynthConfig(n_users=args.users, seed=args.seed, diurnal_amplitude=args.diurnal)
        ).corpus
    print("Hourly activity profile:")
    print(hourly_profile(corpus).render())
    print("\nWeekly activity profile:")
    print(weekly_profile(corpus).render())
    ratio = day_night_ratio(corpus)
    print(f"\nday/night activity ratio: {ratio:.2f}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import generate_report

    corpus = _load_or_generate(args)
    note = (
        f"Corpus: {len(corpus):,} tweets by {corpus.n_users:,} users "
        f"(seed {getattr(args, 'seed', 'n/a')})."
    )
    report = generate_report(run_all_experiments(corpus), title_note=note)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(report)
            handle.write("\n")
        print(f"wrote report to {args.out}", file=sys.stderr)
    else:
        print(report)
    return 0


def _cmd_health(args: argparse.Namespace) -> int:
    from repro.data.validation import corpus_health_report, detect_bots

    corpus = _read_corpus(args.corpus)
    print(corpus_health_report(corpus).render())
    bots = detect_bots(corpus, max_rate_per_day=args.max_rate)
    if bots.size:
        print(f"\nflagged {bots.size} likely bot accounts: {bots[:10].tolist()}"
              + (" ..." if bots.size > 10 else ""))
    else:
        print("\nno likely bot accounts flagged")
    return 0


def _cmd_anonymize(args: argparse.Namespace) -> int:
    from repro.data.anonymize import coarsen_coordinates, pseudonymize_users

    corpus = _read_corpus(args.corpus)
    anonymous = pseudonymize_users(corpus, key=args.key)
    if args.coarsen_km > 0:
        anonymous = coarsen_coordinates(anonymous, args.coarsen_km)
    count = write_tweets_csv(anonymous.iter_tweets(), args.out)
    print(
        f"wrote {count} anonymised tweets to {args.out} "
        f"(coarsened to {args.coarsen_km} km)"
    )
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.check import CheckConfigError, render_json, render_text, run_check

    try:
        result = run_check(
            root=Path(args.root) if args.root else None,
            rules=tuple(args.rules) if args.rules is not None else None,
            baseline_path=Path(args.baseline_file) if args.baseline_file else None,
            record=args.baseline,
        )
    except CheckConfigError as error:
        raise CLIError(str(error)) from None
    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result, verbose_baselined=args.show_baselined))
        if result.recorded is not None:
            print(
                f"recorded {result.recorded} entr"
                f"{'y' if result.recorded == 1 else 'ies'} to the baseline",
                file=sys.stderr,
            )
    return 0 if result.ok else 1


def _cmd_densitymap(args: argparse.Namespace) -> int:
    from repro.experiments.fig1 import run_fig1
    from repro.viz.image import save_density_ppm

    corpus = _load_or_generate(args)
    result = run_fig1(corpus, cell_km=args.cell_km)
    save_density_ppm(result.grid, args.out)
    print(f"wrote density map to {args.out}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "stats": _cmd_stats,
        "experiment": _cmd_experiment,
        "pipeline": _cmd_pipeline,
        "trace": _cmd_trace,
        "serve": _cmd_serve,
        "summary": _cmd_summary,
        "epidemic": _cmd_epidemic,
        "scenario": _cmd_scenario,
        "groundtruth": _cmd_groundtruth,
        "validate": _cmd_validate,
        "distance": _cmd_distance,
        "temporal": _cmd_temporal,
        "report": _cmd_report,
        "health": _cmd_health,
        "anonymize": _cmd_anonymize,
        "check": _cmd_check,
        "densitymap": _cmd_densitymap,
    }
    try:
        return handlers[args.command](args)
    except GazetteerSpecError as error:
        print(f"repro {args.command}: {error}", file=sys.stderr)
        return 1
    except CLIError as error:
        print(f"repro {args.command}: {error}", file=sys.stderr)
        return error.code


if __name__ == "__main__":
    raise SystemExit(main())
