"""Trace exporters: Chrome trace-event JSON and a plain-text span tree.

The Chrome format (the ``chrome://tracing`` / Perfetto "JSON Array
Format") wants one complete event (``"ph": "X"``) per span with
microsecond ``ts``/``dur``; we emit the object form
``{"traceEvents": [...]}`` so metadata fits alongside.  The exporter
works from the plain span dicts a :class:`~repro.obs.tracer.Tracer`
produces (and a run manifest persists) — no live tracer required.

:func:`validate_chrome_trace` is the schema check the test suite runs
over exported traces, mirroring what the tracing UI requires to load a
file at all.
"""

from __future__ import annotations

import json
from pathlib import Path

#: Keys every complete trace event must carry, with their types.
_EVENT_SCHEMA = {
    "name": str,
    "ph": str,
    "ts": (int, float),
    "dur": (int, float),
    "pid": int,
    "tid": int,
}


def chrome_trace_events(spans: list[dict], run_id: str = "") -> dict:
    """Spans → ``{"traceEvents": [...]}`` Chrome trace object.

    Timestamps are microseconds since the earliest span start, so the
    viewer opens at t=0 instead of the Unix epoch.
    """
    origin = min((s.get("start_wall", 0.0) for s in spans), default=0.0)
    events = []
    for span in spans:
        args = {k: v for k, v in span.get("attrs", {}).items()}
        args["span_id"] = span.get("span_id", "")
        if span.get("parent_id"):
            args["parent_id"] = span["parent_id"]
        if span.get("cpu_s") is not None:
            args["cpu_ms"] = round(span.get("cpu_s", 0.0) * 1000.0, 3)
        events.append(
            {
                "name": span.get("name", "?"),
                "cat": "repro",
                "ph": "X",
                "ts": round((span.get("start_wall", 0.0) - origin) * 1e6, 1),
                "dur": round(span.get("wall_s", 0.0) * 1e6, 1),
                "pid": int(span.get("pid", 0)),
                "tid": int(span.get("tid", 0)),
                "args": args,
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"run_id": run_id, "exporter": "repro.obs"},
    }


def write_chrome_trace(spans: list[dict], path: str | Path, run_id: str = "") -> Path:
    """Write the Chrome trace JSON for ``spans``; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(chrome_trace_events(spans, run_id=run_id), indent=2) + "\n",
        encoding="utf-8",
    )
    return path


def validate_chrome_trace(trace: dict) -> list[str]:
    """Schema problems in a Chrome trace object (empty list = valid).

    Checks the shape ``chrome://tracing`` needs: a ``traceEvents`` list
    of complete events with string names, numeric non-negative ``ts`` /
    ``dur`` and integer ``pid`` / ``tid``.
    """
    errors: list[str] = []
    if not isinstance(trace, dict):
        return [f"trace must be an object, got {type(trace).__name__}"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["trace.traceEvents must be a list"]
    for position, event in enumerate(events):
        where = f"traceEvents[{position}]"
        if not isinstance(event, dict):
            errors.append(f"{where} is not an object")
            continue
        for key, expected in _EVENT_SCHEMA.items():
            if key not in event:
                errors.append(f"{where} missing key {key!r}")
            elif not isinstance(event[key], expected) or isinstance(event[key], bool):
                errors.append(
                    f"{where}.{key} has type {type(event[key]).__name__}"
                )
        if event.get("ph") not in ("X", "B", "E", "i", "M"):
            errors.append(f"{where}.ph is {event.get('ph')!r}, not a known phase")
        if isinstance(event.get("ts"), (int, float)) and event["ts"] < 0:
            errors.append(f"{where}.ts is negative")
        if isinstance(event.get("dur"), (int, float)) and event["dur"] < 0:
            errors.append(f"{where}.dur is negative")
    return errors


def render_span_tree(spans: list[dict]) -> str:
    """Indent-formatted span tree with per-span wall/CPU time.

    Spans whose parent is missing from the list (e.g. filtered out)
    render as roots.  Children sort by start time.
    """
    if not spans:
        return "(no spans recorded)"
    by_id = {s["span_id"]: s for s in spans}
    children: dict[str | None, list[dict]] = {}
    for span in spans:
        parent = span.get("parent_id")
        if parent not in by_id:
            parent = None
        children.setdefault(parent, []).append(span)
    for siblings in children.values():
        siblings.sort(key=lambda s: s.get("start_wall", 0.0))

    name_width = max(
        (len(s.get("name", "?")) + 3 * _depth(s, by_id) for s in spans), default=20
    )
    name_width = max(name_width, 20)
    lines = [f"{'span':<{name_width}s} {'wall':>10s} {'cpu':>10s}  attrs"]

    def walk(span: dict, prefix: str, is_last: bool) -> None:
        connector = "" if prefix == "" and is_last is None else ("└─ " if is_last else "├─ ")
        label = prefix + connector + span.get("name", "?")
        attrs = span.get("attrs", {})
        attr_text = " ".join(f"{k}={v}" for k, v in attrs.items())
        lines.append(
            f"{label:<{name_width}s} {_fmt_s(span.get('wall_s', 0.0)):>10s} "
            f"{_fmt_s(span.get('cpu_s', 0.0)):>10s}  {attr_text}"
        )
        kids = children.get(span["span_id"], [])
        child_prefix = prefix + ("" if is_last is None else ("   " if is_last else "│  "))
        for index, kid in enumerate(kids):
            walk(kid, child_prefix, index == len(kids) - 1)

    roots = children.get(None, [])
    for root in roots:
        walk(root, "", None)  # type: ignore[arg-type]
    return "\n".join(lines)


def _depth(span: dict, by_id: dict) -> int:
    depth = 0
    seen = set()
    parent = span.get("parent_id")
    while parent in by_id and parent not in seen:
        seen.add(parent)
        depth += 1
        parent = by_id[parent].get("parent_id")
    return depth


def _fmt_s(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    return f"{seconds * 1000.0:.1f}ms"
