"""Opt-in profiling hooks: cProfile hotspots and tracemalloc peaks.

:func:`profiled` wraps one region — a pipeline task body or a served
request — and produces a :class:`ProfileReport` with the top-N functions
by cumulative time (and, optionally, the top allocation sites).  Reports
are plain data, so the pipeline drops them next to the run manifest and
the serving layer can write one per slow request.

Profiling is strictly opt-in (``repro pipeline run --profile``,
``repro serve --profile-dir``): cProfile costs 2–5x on tight Python
loops, so it never runs by default.
"""

from __future__ import annotations

import cProfile
import json
import pstats
import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator


@dataclass
class ProfileReport:
    """Top hotspots of one profiled region, as plain data."""

    name: str
    total_seconds: float = 0.0
    total_calls: int = 0
    hotspots: list[dict] = field(default_factory=list)
    memory_top: list[dict] = field(default_factory=list)
    peak_memory_kb: float = 0.0

    def to_dict(self) -> dict:
        """JSON-safe form."""
        return {
            "name": self.name,
            "total_seconds": round(self.total_seconds, 6),
            "total_calls": self.total_calls,
            "hotspots": self.hotspots,
            "memory_top": self.memory_top,
            "peak_memory_kb": round(self.peak_memory_kb, 1),
        }

    def render(self) -> str:
        """Human-readable top table (one line per hotspot)."""
        lines = [
            f"profile {self.name}: {self.total_seconds:.3f}s, "
            f"{self.total_calls} calls"
        ]
        for row in self.hotspots:
            lines.append(
                f"  {row['cumtime']:8.3f}s cum  {row['tottime']:8.3f}s self  "
                f"{row['ncalls']:>8} calls  {row['func']}"
            )
        if self.peak_memory_kb:
            lines.append(f"  peak traced memory: {self.peak_memory_kb:.0f} KiB")
        return "\n".join(lines)


class _Holder:
    """Mutable result slot yielded by :func:`profiled`."""

    report: ProfileReport | None = None


def _function_label(func: tuple) -> str:
    filename, lineno, name = func
    if filename == "~":
        return name  # builtins
    return f"{Path(filename).name}:{lineno}:{name}"


@contextmanager
def profiled(name: str, top_n: int = 20, memory: bool = False) -> Iterator[_Holder]:
    """Profile the enclosed block; ``holder.report`` is set on exit.

    ``memory=True`` additionally runs tracemalloc and reports the top
    allocation sites plus the traced peak.  Nesting ``profiled`` blocks
    is not supported (cProfile is process-global).
    """
    holder = _Holder()
    tracing_memory = memory and not tracemalloc.is_tracing()
    if tracing_memory:
        tracemalloc.start()
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield holder
    finally:
        profiler.disable()
        stats = pstats.Stats(profiler)
        rows = []
        for func, (cc, nc, tottime, cumtime, _callers) in stats.stats.items():  # type: ignore[attr-defined]
            rows.append(
                {
                    "func": _function_label(func),
                    "ncalls": nc,
                    "tottime": round(tottime, 6),
                    "cumtime": round(cumtime, 6),
                }
            )
        rows.sort(key=lambda r: r["cumtime"], reverse=True)
        report = ProfileReport(
            name=name,
            total_seconds=stats.total_tt,  # type: ignore[attr-defined]
            total_calls=stats.total_calls,  # type: ignore[attr-defined]
            hotspots=rows[:top_n],
        )
        if tracing_memory:
            snapshot = tracemalloc.take_snapshot()
            _current, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            report.peak_memory_kb = peak / 1024.0
            report.memory_top = [
                {
                    "site": f"{Path(s.traceback[0].filename).name}:{s.traceback[0].lineno}",
                    "size_kb": round(s.size / 1024.0, 1),
                    "count": s.count,
                }
                for s in snapshot.statistics("lineno")[:top_n]
            ]
        holder.report = report


def write_profile(report: ProfileReport, path: str | Path) -> Path:
    """Write one report as pretty JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report.to_dict(), indent=2) + "\n", encoding="utf-8")
    return path
