"""Nestable trace spans and global counters.

A :class:`Span` measures one named region of work — wall-clock *and* CPU
time, plus free-form attributes — and remembers its parent, so a
collection of spans reconstructs the call tree of a pipeline run or a
served request.  A :class:`Tracer` collects spans; nesting is tracked
per thread (a span opened while another is active on the same thread
becomes its child automatically).

Tracing is **off by default**.  Instrumented code calls the module-level
:func:`span` helper, which returns a shared no-op context manager while
no tracer is installed — the disabled cost is one global read and one
function call, small enough that hot paths can stay instrumented
permanently (the pipeline benchmark asserts < 2% overhead).

Cross-process propagation: the parallel pipeline executor hands the
parent span id to each pool worker inside the task payload; the worker
builds its own :class:`Tracer`, opens its spans under that foreign
parent id, and ships the finished spans back as plain dicts for the
coordinator to :meth:`~Tracer.adopt`.  Span ids embed the pid, so ids
never collide across the pool.

Counters are simpler: a process-global name → value map, always on
(increments are per-call, not per-element), exposed by the serving
layer's ``/metrics`` endpoint via :func:`counters_snapshot`.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from dataclasses import dataclass, field


@dataclass
class Span:
    """One timed region: identity, parentage, clocks and attributes."""

    name: str
    span_id: str
    parent_id: str | None = None
    start_wall: float = 0.0  # epoch seconds
    wall_s: float = 0.0
    cpu_s: float = 0.0
    pid: int = 0
    tid: int = 0
    attrs: dict = field(default_factory=dict)

    def set(self, **attrs) -> "Span":
        """Attach attributes to the span; returns self for chaining."""
        self.attrs.update(attrs)
        return self

    @property
    def wall_ms(self) -> float:
        """Wall-clock duration in milliseconds."""
        return self.wall_s * 1000.0

    @property
    def cpu_ms(self) -> float:
        """CPU-time duration in milliseconds."""
        return self.cpu_s * 1000.0

    def to_dict(self) -> dict:
        """Plain-data form (JSON-safe, what manifests persist)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_wall": self.start_wall,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "pid": self.pid,
            "tid": self.tid,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        """Rebuild a span from its :meth:`to_dict` form."""
        return cls(
            name=data["name"],
            span_id=data["span_id"],
            parent_id=data.get("parent_id"),
            start_wall=data.get("start_wall", 0.0),
            wall_s=data.get("wall_s", 0.0),
            cpu_s=data.get("cpu_s", 0.0),
            pid=data.get("pid", 0),
            tid=data.get("tid", 0),
            attrs=dict(data.get("attrs", {})),
        )


class _ActiveSpan:
    """Context manager that times one span and maintains the nest stack."""

    __slots__ = ("_tracer", "_span", "_t0", "_c0")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._t0 = time.perf_counter()
        self._c0 = time.process_time()
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        span = self._span
        span.wall_s = time.perf_counter() - self._t0
        span.cpu_s = time.process_time() - self._c0
        if exc_type is not None:
            span.attrs.setdefault("error", repr(exc))
        self._tracer._pop(span)


class _NullSpan:
    """The shared do-nothing span used while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def set(self, **attrs) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()

#: Process-wide span serial.  Deliberately NOT per-tracer: a pooled
#: worker process builds a fresh Tracer for every task it executes, and
#: per-tracer serials would restart at 1 each time, colliding once the
#: coordinator merges the spans of two tasks run by the same worker.
_span_serial = itertools.count(1)


class Tracer:
    """Collects finished spans; thread-safe; one instance per run."""

    def __init__(self, run_id: str = "") -> None:
        self.run_id = run_id
        self._lock = threading.Lock()
        self._finished: list[Span] = []
        self._local = threading.local()

    # -- span lifecycle ------------------------------------------------

    @staticmethod
    def _next_id() -> str:
        return f"{os.getpid():x}.{next(_span_serial):x}"

    def span(self, name: str, parent_id: str | None = None, **attrs) -> _ActiveSpan:
        """Open a span; nests under the thread's active span by default.

        Pass ``parent_id`` explicitly to graft under a foreign span (the
        process-pool handoff) or to force a root.
        """
        if parent_id is None:
            stack = getattr(self._local, "stack", None)
            if stack:
                parent_id = stack[-1].span_id
            else:
                parent_id = getattr(self._local, "default_parent", None)
        span = Span(
            name=name,
            span_id=self._next_id(),
            parent_id=parent_id,
            start_wall=time.time(),  # repro: allow[determinism] span epoch anchor
            pid=os.getpid(),
            tid=threading.get_ident() & 0xFFFFFFFF,
            attrs=dict(attrs),
        )
        return _ActiveSpan(self, span)

    def _push(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = getattr(self._local, "stack", [])
        if stack and stack[-1] is span:
            stack.pop()
        with self._lock:
            self._finished.append(span)

    # -- cross-process / cross-thread handoff --------------------------

    def set_thread_parent(self, span_id: str | None) -> None:
        """Ambient parent for spans opened on *this* thread.

        Used on the far side of a handoff (pool worker, request thread)
        where the logical parent lives in another process or thread.
        """
        self._local.default_parent = span_id

    def current_span_id(self) -> str | None:
        """The id of this thread's innermost active span, if any."""
        stack = getattr(self._local, "stack", None)
        if stack:
            return stack[-1].span_id
        return getattr(self._local, "default_parent", None)

    def adopt(self, span_dicts: list[dict]) -> None:
        """Graft spans recorded elsewhere (a pool worker) into this tracer."""
        spans = [Span.from_dict(d) for d in span_dicts]
        with self._lock:
            self._finished.extend(spans)

    # -- results -------------------------------------------------------

    def finished_spans(self) -> list[Span]:
        """All finished spans, ordered by start time."""
        with self._lock:
            return sorted(self._finished, key=lambda s: s.start_wall)

    def to_dicts(self) -> list[dict]:
        """JSON-safe span list, ordered by start time."""
        return [span.to_dict() for span in self.finished_spans()]


# -- module-level current tracer (the instrumentation entry point) ------

_install_lock = threading.Lock()  # repro: allow[forksafety] held only around a two-field swap, never across a fork
_current: Tracer | None = None


def install(tracer: Tracer | None) -> Tracer | None:
    """Make ``tracer`` the process-wide current tracer; returns the old one.

    Pass ``None`` to disable tracing (the default state).
    """
    global _current
    with _install_lock:
        previous = _current
        _current = tracer
    return previous


def current() -> Tracer | None:
    """The installed tracer, or ``None`` while tracing is disabled."""
    return _current


def enabled() -> bool:
    """Whether a tracer is currently installed."""
    return _current is not None


def span(name: str, **attrs):
    """Open a span on the current tracer, or a no-op when disabled.

    This is the call instrumented code embeds in hot paths::

        with obs.span("extract_od_flows", areas=n) as sp:
            ...
            sp.set(pairs=built)
    """
    tracer = _current
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, **attrs)


# -- global counters ----------------------------------------------------

_counter_lock = threading.Lock()  # repro: allow[forksafety] held only around a dict increment, never across a fork
_counters: dict[str, float] = {}


def counter(name: str, delta: float = 1) -> None:
    """Add ``delta`` to the process-global counter ``name``.

    Counters are always on; callers increment once per operation (with
    the batch size as the delta), never once per element.
    """
    with _counter_lock:
        _counters[name] = _counters.get(name, 0) + delta


def counters_snapshot() -> dict[str, float]:
    """A point-in-time copy of every counter."""
    with _counter_lock:
        return dict(sorted(_counters.items()))


def reset_counters() -> None:
    """Zero every counter (test isolation)."""
    with _counter_lock:
        _counters.clear()
