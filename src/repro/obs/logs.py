"""Structured JSON logging with correlation fields.

Every record is one JSON object on one line — machine-parseable, never
interleaved mid-record (a single ``write`` call per record) and written
to **stderr** by default so instrumented code never pollutes stdout,
which belongs to rendered artefacts and JSON results.

Correlation works through :meth:`StructuredLogger.bind`: a context
manager that stacks fields (``run_id``, ``task_id``, ``request_id``)
onto every record emitted by the same thread while it is open::

    log = get_logger("repro.pipeline")
    with log.bind(run_id=manifest.run_id, task_id=task.name):
        log.info("task_started")
        ...
        log.info("task_finished", seconds=elapsed)

Loggers are cheap, cached by name, and safe to share across threads
(bound fields are thread-local; the emit path is a single atomic write).
"""

from __future__ import annotations

import json
import sys
import threading
import time
from typing import IO, Iterator
from contextlib import contextmanager

#: Severity order for the level filter.
_LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}


class StructuredLogger:
    """Emits one-line JSON records with thread-local bound context."""

    def __init__(
        self,
        name: str = "repro",
        stream: IO[str] | None = None,
        level: str = "info",
    ) -> None:
        if level not in _LEVELS:
            raise ValueError(f"unknown level {level!r}; expected one of {sorted(_LEVELS)}")
        self.name = name
        self.level = level
        self._stream = stream
        self._local = threading.local()

    # -- context binding -----------------------------------------------

    @contextmanager
    def bind(self, **fields) -> Iterator[None]:
        """Attach ``fields`` to every record this thread emits inside."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        stack.append(fields)
        try:
            yield
        finally:
            stack.pop()

    def bound_fields(self) -> dict:
        """The merged bound context of the calling thread."""
        merged: dict = {}
        for fields in getattr(self._local, "stack", []):
            merged.update(fields)
        return merged

    # -- emission ------------------------------------------------------

    def _emit(self, level: str, event: str, fields: dict) -> None:
        if _LEVELS[level] < _LEVELS[self.level]:
            return
        record = {
            "ts": round(time.time(), 6),  # repro: allow[determinism] log record timestamp
            "level": level,
            "logger": self.name,
            "event": event,
        }
        record.update(self.bound_fields())
        record.update(fields)
        stream = self._stream if self._stream is not None else sys.stderr
        try:
            stream.write(json.dumps(record, default=str) + "\n")
            stream.flush()
        except (ValueError, OSError):  # repro: allow[hygiene] closed stream at teardown
            pass  # drop the record: nowhere left to write it

    def debug(self, event: str, **fields) -> None:
        """Emit a debug-level record."""
        self._emit("debug", event, fields)

    def info(self, event: str, **fields) -> None:
        """Emit an info-level record."""
        self._emit("info", event, fields)

    def warning(self, event: str, **fields) -> None:
        """Emit a warning-level record."""
        self._emit("warning", event, fields)

    def error(self, event: str, **fields) -> None:
        """Emit an error-level record."""
        self._emit("error", event, fields)


_registry_lock = threading.Lock()  # repro: allow[forksafety] held only around a dict insert, never across a fork
_loggers: dict[str, StructuredLogger] = {}


def get_logger(name: str = "repro") -> StructuredLogger:
    """The shared logger for ``name`` (created on first use)."""
    with _registry_lock:
        logger = _loggers.get(name)
        if logger is None:
            logger = _loggers[name] = StructuredLogger(name)
        return logger
