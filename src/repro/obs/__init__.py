"""Unified observability: trace spans, structured logs, profiling hooks.

One substrate for "what did the system just do, and where did the time
go" across the offline pipeline and the online service:

``tracer``
    Nestable :class:`Span` trees with wall *and* CPU time, a per-run
    :class:`Tracer`, the module-level :func:`span` / :func:`counter`
    helpers instrumented code embeds, and span-id handoff so traces
    survive the pipeline's process pool.  Disabled by default with a
    near-zero no-op path.
``logs``
    One-line JSON records with thread-local correlation fields
    (``run_id`` / ``task_id`` / ``request_id``) via
    :meth:`StructuredLogger.bind`; stderr by default, never stdout.
``profile``
    Opt-in cProfile + tracemalloc around a task or request, reduced to
    a plain-data top-N hotspot report.
``export``
    Chrome trace-event JSON (loadable in ``chrome://tracing``) and a
    plain-text span-tree renderer — what ``repro trace show`` prints.

Typical pipeline wiring (what ``repro pipeline run --trace`` does)::

    from repro import obs

    tracer = obs.Tracer(run_id=run_id)
    previous = obs.install(tracer)
    try:
        with obs.span("pipeline.run", jobs=jobs):
            ...  # instrumented code nests spans automatically
    finally:
        obs.install(previous)
    manifest.trace = tracer.to_dicts()
"""

from repro.obs.export import (
    chrome_trace_events,
    render_span_tree,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.logs import StructuredLogger, get_logger
from repro.obs.profile import ProfileReport, profiled, write_profile
from repro.obs.tracer import (
    Span,
    Tracer,
    counter,
    counters_snapshot,
    current,
    enabled,
    install,
    reset_counters,
    span,
)

__all__ = [
    "ProfileReport",
    "Span",
    "StructuredLogger",
    "Tracer",
    "chrome_trace_events",
    "counter",
    "counters_snapshot",
    "current",
    "enabled",
    "get_logger",
    "install",
    "profiled",
    "render_span_tree",
    "reset_counters",
    "span",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_profile",
]
