"""Lat/lon density heat maps (Fig 1 style).

Renders a :class:`~repro.geo.grid.DensityGrid` as a character map with
a log10 brightness ramp — the terminal version of the paper's tweet
density map of Australia.
"""

from __future__ import annotations

import numpy as np

from repro.geo.grid import DensityGrid

#: Brightness ramp from empty to densest.
DENSITY_RAMP = " .:-=+*#%@"


def render_density_map(
    grid: DensityGrid, max_width: int = 100, title: str = ""
) -> str:
    """Render the grid's log-density as a character map.

    Rows are flipped so north is up.  If the grid is wider than
    ``max_width``, columns/rows are subsampled by max-pooling (the
    brightest cell wins), preserving hotspots.
    """
    counts = grid.counts
    if counts.size == 0 or counts.max() == 0:
        return f"{title}: empty density grid"
    pooled = _max_pool_to_width(counts, max_width)
    log_density = np.log10(np.maximum(pooled, 1))
    top = max(float(log_density.max()), 1e-9)
    lines = []
    if title:
        lines.append(title)
    n_levels = len(DENSITY_RAMP)
    for row in reversed(range(pooled.shape[0])):  # north up
        chars = []
        for col in range(pooled.shape[1]):
            if pooled[row, col] == 0:
                chars.append(DENSITY_RAMP[0])
            else:
                level = int(log_density[row, col] / top * (n_levels - 1))
                chars.append(DENSITY_RAMP[max(1, level)])
        lines.append("".join(chars))
    lines.append(
        f"(log10 tweet density: ' '=0, ramp '{DENSITY_RAMP[1:]}' up to 1e{top:.1f})"
    )
    return "\n".join(lines)


def _max_pool_to_width(counts: np.ndarray, max_width: int) -> np.ndarray:
    """Shrink a count matrix to at most ``max_width`` columns by max-pooling.

    The aspect ratio is roughly preserved, with rows additionally halved
    relative to columns because terminal cells are ~2x taller than wide.
    """
    n_rows, n_cols = counts.shape
    col_factor = max(1, int(np.ceil(n_cols / max_width)))
    row_factor = max(1, col_factor * 2)
    out_rows = int(np.ceil(n_rows / row_factor))
    out_cols = int(np.ceil(n_cols / col_factor))
    pooled = np.zeros((out_rows, out_cols), dtype=counts.dtype)
    for r in range(out_rows):
        for c in range(out_cols):
            block = counts[
                r * row_factor : (r + 1) * row_factor,
                c * col_factor : (c + 1) * col_factor,
            ]
            pooled[r, c] = block.max() if block.size else 0
    return pooled
