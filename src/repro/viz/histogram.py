"""Log-log empirical PDF plots (Fig 2 style)."""

from __future__ import annotations

import numpy as np

from repro.viz.ascii import Canvas, LogAxis, frame


def render_loglog_pdf(
    bin_centers: np.ndarray,
    density: np.ndarray,
    title: str = "",
    x_label: str = "value",
    width: int = 56,
    height: int = 18,
    marker: str = "*",
) -> str:
    """Render a pre-binned PDF on log-log axes as text.

    Takes the output of :func:`repro.stats.binning.log_binned_pdf`
    directly.  Empty input yields a note instead of a plot.
    """
    bin_centers = np.asarray(bin_centers, dtype=np.float64)
    density = np.asarray(density, dtype=np.float64)
    if bin_centers.shape != density.shape:
        raise ValueError("bin_centers and density must align")
    keep = (bin_centers > 0) & (density > 0)
    bin_centers = bin_centers[keep]
    density = density[keep]
    if bin_centers.size == 0:
        return f"{title}: nothing to plot"
    x_axis = LogAxis(
        lo=float(bin_centers.min()),
        hi=float(bin_centers.max()) * (1 + 1e-9) + 1e-12,
        n_cells=width,
    )
    y_axis = LogAxis(
        lo=float(density.min()),
        hi=float(density.max()) * (1 + 1e-9) + 1e-300,
        n_cells=height,
    )
    canvas = Canvas(width, height)
    for center, value in zip(bin_centers, density):
        canvas.set_xy(x_axis.cell(center), y_axis.cell(value), marker)
    return frame(canvas, x_axis, y_axis, title, x_label, "P(x)")
