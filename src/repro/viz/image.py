"""PPM image output: the Fig 1 density map as an actual picture.

No imaging library is assumed: binary PPM (P6) is a three-line header
plus raw RGB bytes, readable by effectively every image viewer and
converter.  The colour ramp mimics the paper's dark-to-bright density
scale.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.geo.grid import DensityGrid

#: Piecewise-linear colour ramp stops (position in [0,1], (r, g, b)).
_RAMP = (
    (0.0, (8, 8, 32)),
    (0.25, (32, 32, 128)),
    (0.5, (64, 160, 160)),
    (0.75, (240, 208, 64)),
    (1.0, (255, 255, 224)),
)


def _apply_ramp(values: np.ndarray) -> np.ndarray:
    """Map values in [0, 1] to RGB via the ramp; returns uint8 (..., 3)."""
    values = np.clip(values, 0.0, 1.0)
    positions = np.array([stop[0] for stop in _RAMP])
    colors = np.array([stop[1] for stop in _RAMP], dtype=np.float64)
    rgb = np.empty(values.shape + (3,), dtype=np.float64)
    for channel in range(3):
        rgb[..., channel] = np.interp(values, positions, colors[:, channel])
    return rgb.astype(np.uint8)


def density_to_rgb(grid: DensityGrid, gamma: float = 1.0) -> np.ndarray:
    """The grid's log-density as an RGB array (north up).

    Empty cells map to the ramp's dark end; ``gamma`` < 1 brightens the
    sparse periphery.
    """
    if gamma <= 0:
        raise ValueError("gamma must be positive")
    log_density = grid.log_density()
    top = max(float(log_density.max()), 1e-9)
    normalized = (log_density / top) ** gamma
    return _apply_ramp(normalized[::-1, :])  # row 0 = south; flip north-up


def save_density_ppm(
    grid: DensityGrid, path: str | Path, gamma: float = 1.0
) -> None:
    """Write the density map as a binary PPM (P6) image."""
    rgb = density_to_rgb(grid, gamma=gamma)
    height, width, _channels = rgb.shape
    with open(path, "wb") as handle:
        handle.write(f"P6\n{width} {height}\n255\n".encode("ascii"))
        handle.write(rgb.tobytes())


def load_ppm(path: str | Path) -> np.ndarray:
    """Read back a binary PPM written by :func:`save_density_ppm`.

    Minimal parser for round-trip testing; not a general PPM reader
    (no comments, single whitespace separators).
    """
    with open(path, "rb") as handle:
        magic = handle.readline().strip()
        if magic != b"P6":
            raise ValueError(f"not a binary PPM: magic {magic!r}")
        dims = handle.readline().split()
        width, height = int(dims[0]), int(dims[1])
        maxval = int(handle.readline())
        if maxval != 255:
            raise ValueError(f"unsupported max value {maxval}")
        data = handle.read(width * height * 3)
    return np.frombuffer(data, dtype=np.uint8).reshape(height, width, 3)
