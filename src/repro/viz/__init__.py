"""Terminal rendering of the paper's figures.

No plotting library is assumed: figures render as ASCII/Unicode text,
which is exactly what the benchmark harness prints and what
EXPERIMENTS.md embeds.

``ascii``
    The character canvas and axis machinery shared by all plots.
``scatter``
    Log-log scatter plots with a ``y = x`` reference line and binned
    means (Fig 3 and Fig 4).
``histogram``
    Log-log empirical PDFs (Fig 2).
``density``
    Lat/lon density heat maps (Fig 1).
"""

from repro.viz.ascii import Canvas, LogAxis
from repro.viz.density import render_density_map
from repro.viz.histogram import render_loglog_pdf
from repro.viz.image import save_density_ppm
from repro.viz.scatter import render_loglog_scatter
from repro.viz.timeseries import render_epidemic_curves, render_timeseries

__all__ = [
    "Canvas",
    "LogAxis",
    "render_density_map",
    "render_epidemic_curves",
    "render_loglog_pdf",
    "render_loglog_scatter",
    "render_timeseries",
    "save_density_ppm",
]
