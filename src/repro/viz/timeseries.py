"""ASCII time-series charts: epidemic curves and drift diagnostics."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.viz.ascii import Canvas

SERIES_MARKERS = "*o+x#@%&"


def render_timeseries(
    times: np.ndarray,
    series: Sequence[np.ndarray],
    labels: Sequence[str],
    title: str = "",
    x_label: str = "time",
    width: int = 64,
    height: int = 16,
) -> str:
    """Plot one or more aligned series on linear axes as text.

    Each series gets a marker from :data:`SERIES_MARKERS`; a legend maps
    markers to labels.  Non-finite values are skipped.
    """
    times = np.asarray(times, dtype=np.float64)
    if len(series) == 0:
        raise ValueError("need at least one series")
    if len(series) != len(labels):
        raise ValueError("series and labels must align")
    if len(series) > len(SERIES_MARKERS):
        raise ValueError(f"at most {len(SERIES_MARKERS)} series supported")
    arrays = [np.asarray(s, dtype=np.float64) for s in series]
    for array in arrays:
        if array.shape != times.shape:
            raise ValueError("every series must align with times")
    finite_values = np.concatenate([a[np.isfinite(a)] for a in arrays])
    if finite_values.size == 0:
        return f"{title}: nothing to plot"
    y_lo = float(finite_values.min())
    y_hi = float(finite_values.max())
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    t_lo = float(times.min())
    t_hi = float(times.max())
    if t_hi == t_lo:
        t_hi = t_lo + 1.0

    canvas = Canvas(width, height)
    for marker, array in zip(SERIES_MARKERS, arrays):
        for t, value in zip(times, array):
            if not np.isfinite(value):
                continue
            x_cell = int((t - t_lo) / (t_hi - t_lo) * (width - 1))
            y_cell = int((value - y_lo) / (y_hi - y_lo) * (height - 1))
            canvas.set_xy(x_cell, y_cell, marker)

    lines = []
    if title:
        lines.append(title.center(width + 2))
    lines.append("+" + "-" * width + "+")
    body = canvas.render().split("\n")
    for row_index, row in enumerate(body):
        annotation = ""
        if row_index == 0:
            annotation = f" {y_hi:.3g}"
        elif row_index == height - 1:
            annotation = f" {y_lo:.3g}"
        lines.append("|" + row + "|" + annotation)
    lines.append("+" + "-" * width + "+")
    lines.append(f" {t_lo:.3g}{' ' * max(1, width - 12)}{t_hi:.3g}")
    legend = "   ".join(
        f"{marker}={label}" for marker, label in zip(SERIES_MARKERS, labels)
    )
    lines.append(f" x: {x_label}   {legend}")
    return "\n".join(lines)


def render_epidemic_curves(
    result, patches: Sequence[int | str], title: str = "epidemic curves"
) -> str:
    """Infectious prevalence over time for selected patches of a SEIR run."""
    network = result.network
    indices = [
        network.names.index(p) if isinstance(p, str) else int(p) for p in patches
    ]
    series = [result.i[:, index] for index in indices]
    labels = [network.names[index] for index in indices]
    return render_timeseries(
        result.times, series, labels, title=title, x_label="days"
    )
