"""Log-log scatter plots (Fig 3 and Fig 4 style).

Grey crosses become ``+``, the logarithmically binned means become
``o``, and the ``y = x`` reference line becomes ``/`` — the same three
layers the paper's Fig 4 panels draw.
"""

from __future__ import annotations

import numpy as np

from repro.stats.binning import log_binned_means
from repro.viz.ascii import Canvas, LogAxis, frame


def render_loglog_scatter(
    x: np.ndarray,
    y: np.ndarray,
    title: str = "",
    x_label: str = "estimated",
    y_label: str = "observed",
    width: int = 56,
    height: int = 20,
    identity_line: bool = True,
    binned_means: bool = True,
) -> str:
    """Render a log-log scatter of positive (x, y) pairs as text.

    Non-positive pairs are dropped (they have no place on log axes).
    Returns a bordered multi-line string; empty input yields a note
    instead of a plot.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape:
        raise ValueError(f"shape mismatch: x {x.shape} vs y {y.shape}")
    keep = (x > 0) & (y > 0)
    x = x[keep]
    y = y[keep]
    if x.size == 0:
        return f"{title}: no positive points to plot"
    lo = float(min(x.min(), y.min()))
    hi = float(max(x.max(), y.max()))
    if hi <= lo:
        hi = lo * 10.0
    x_axis = LogAxis(lo=lo, hi=hi, n_cells=width)
    y_axis = LogAxis(lo=lo, hi=hi, n_cells=height)
    canvas = Canvas(width, height)
    if identity_line:
        for cell in range(width):
            # Both axes share bounds, so y = x maps cell-to-cell after
            # rescaling for the differing cell counts.
            y_cell = int(cell * height / width)
            canvas.set_xy(cell, min(y_cell, height - 1), "/")
    for xi, yi in zip(x, y):
        canvas.set_xy(x_axis.cell(xi), y_axis.cell(yi), "+")
    if binned_means and x.size >= 4:
        centers, means, _counts = log_binned_means(x, y, bins_per_decade=4)
        for cx, cy in zip(centers, means):
            if cy > 0:
                canvas.set_xy(x_axis.cell(cx), y_axis.cell(cy), "o")
    return frame(canvas, x_axis, y_axis, title, x_label, y_label)
