"""Character canvas and logarithmic axes for terminal plots."""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class LogAxis:
    """A base-10 logarithmic axis mapping values to character columns/rows.

    ``lo`` and ``hi`` are the positive data bounds; values outside are
    clamped onto the edge cells so every point stays visible.
    """

    lo: float
    hi: float
    n_cells: int

    def __post_init__(self) -> None:
        if self.lo <= 0 or self.hi <= 0:
            raise ValueError("log axis needs positive bounds")
        if self.hi <= self.lo:
            raise ValueError(f"need hi > lo, got [{self.lo}, {self.hi}]")
        if self.n_cells < 2:
            raise ValueError("axis needs at least 2 cells")

    def cell(self, value: float) -> int:
        """Cell index of a value (clamped into range)."""
        if value <= 0:
            return 0
        t = (math.log10(value) - math.log10(self.lo)) / (
            math.log10(self.hi) - math.log10(self.lo)
        )
        return max(0, min(self.n_cells - 1, int(t * self.n_cells)))

    def decade_ticks(self) -> list[tuple[int, float]]:
        """(cell, value) pairs at each power of ten inside the range."""
        ticks = []
        k = math.ceil(math.log10(self.lo))
        while 10.0**k <= self.hi * (1 + 1e-9):
            ticks.append((self.cell(10.0**k), 10.0**k))
            k += 1
        return ticks


def format_power_of_ten(value: float) -> str:
    """Compact label for a decade tick (``1e3`` style)."""
    exponent = round(math.log10(value))
    return f"1e{exponent}"


class Canvas:
    """A width x height character grid with painter-style drawing.

    Row 0 is the *top* of the rendered output; plot code that thinks in
    "y grows upward" coordinates should use :meth:`set_xy`.
    """

    def __init__(self, width: int, height: int, fill: str = " ") -> None:
        if width < 1 or height < 1:
            raise ValueError("canvas must be at least 1x1")
        self.width = width
        self.height = height
        self._rows = [[fill] * width for _ in range(height)]

    def set(self, row: int, col: int, char: str) -> None:
        """Put a character at (row, col); out-of-range is ignored."""
        if 0 <= row < self.height and 0 <= col < self.width:
            self._rows[row][col] = char

    def set_xy(self, x_cell: int, y_cell: int, char: str) -> None:
        """Put a character with y growing upward from the bottom row."""
        self.set(self.height - 1 - y_cell, x_cell, char)

    def get(self, row: int, col: int) -> str:
        """Read a character back (space if out of range)."""
        if 0 <= row < self.height and 0 <= col < self.width:
            return self._rows[row][col]
        return " "

    def render(self) -> str:
        """The canvas as a newline-joined string."""
        return "\n".join("".join(row) for row in self._rows)


def frame(
    canvas: Canvas,
    x_axis: LogAxis,
    y_axis: LogAxis,
    title: str,
    x_label: str,
    y_label: str,
) -> str:
    """Wrap a canvas with a border, decade ticks and labels."""
    lines = []
    if title:
        lines.append(title.center(canvas.width + 2))
    lines.append("+" + "-" * canvas.width + "+")
    body = canvas.render().split("\n")
    y_ticks = {canvas.height - 1 - cell: value for cell, value in y_axis.decade_ticks()}
    for row_index, row in enumerate(body):
        suffix = ""
        if row_index in y_ticks:
            suffix = " " + format_power_of_ten(y_ticks[row_index])
        lines.append("|" + row + "|" + suffix)
    lines.append("+" + "-" * canvas.width + "+")
    tick_row = [" "] * canvas.width
    for cell, value in x_axis.decade_ticks():
        label = format_power_of_ten(value)
        for offset, char in enumerate(label):
            if 0 <= cell + offset < canvas.width:
                tick_row[cell + offset] = char
    lines.append(" " + "".join(tick_row))
    footer = f"x: {x_label}"
    if y_label:
        footer += f"   y: {y_label}"
    lines.append(" " + footer)
    return "\n".join(lines)
