"""The paper's artefact suite expressed as a pipeline graph.

The DAG mirrors the data flow of ``run_all_experiments``::

    corpus ──┬── table1
             ├── fig1
             ├── fig2
             └── index ──┬── fig3
                         └── fig4 ── table2

``corpus`` either synthesises (sharded across ``ctx.jobs`` workers,
bit-identical to serial) or loads a CSV, keyed by the file's content
hash.  Downstream tasks are keyed by the corpus artifact digest, so
editing only e.g. the Table II scoring re-executes exactly one node on
the next run — everything else is served from the artifact store.

Each task carries a code-version tag in :data:`TASK_VERSIONS`; bump a
tag when the corresponding experiment implementation changes meaning,
and stale cached artifacts invalidate automatically.
"""

from __future__ import annotations

import dataclasses

from repro.data.corpus import TweetCorpus
from repro.data.io import read_tweets_csv
from repro.experiments.fig1 import run_fig1
from repro.experiments.fig2 import run_fig2
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig4 import run_fig4
from repro.experiments.runner import ExperimentSuiteResult
from repro.experiments.scales import ExperimentContext
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import table2_from_fig4
from repro.geo.index import GridIndex
from repro.pipeline.executor import Executor, RunResult
from repro.pipeline.graph import Pipeline
from repro.pipeline.hashing import hash_file
from repro.pipeline.store import ArtifactStore
from repro.pipeline.task import Task, TaskContext
from repro.synth.config import SynthConfig
from repro.synth.generator import generate_corpus

#: Names of the artefact-producing tasks, in paper order.
ARTEFACT_TASKS = ("table1", "fig1", "fig2", "fig3", "fig4", "table2")

#: Per-task code-version tags.  Bump one to invalidate that task's
#: cached outputs (and, transitively, its dependents) without touching
#: anything upstream.
TASK_VERSIONS = {
    "corpus": "1",
    "index": "1",
    "table1": "1",
    "fig1": "1",
    "fig2": "1",
    "fig3": "1",
    "fig4": "1",
    "table2": "1",
}


def _task_generate(ctx: TaskContext) -> TweetCorpus:
    config = SynthConfig(**ctx.params)
    return generate_corpus(config, jobs=ctx.jobs).corpus


def _task_load_corpus(ctx: TaskContext) -> TweetCorpus:
    return TweetCorpus.from_tweets(read_tweets_csv(ctx.params["path"]))


def _task_index(ctx: TaskContext) -> GridIndex:
    corpus = ctx.input("corpus")
    return GridIndex(corpus.lats, corpus.lons)


def _context(ctx: TaskContext) -> ExperimentContext:
    return ExperimentContext(
        ctx.input("corpus"),
        index=ctx.input("index"),
        gazetteer=ctx.params.get("gazetteer"),
    )


def corpus_task(
    config: SynthConfig | None = None, corpus_path: str | None = None
) -> Task:
    """The shared ``corpus`` source task (synthesise or load a CSV).

    Exactly one source applies: ``corpus_path`` (cache-keyed by the
    file's content hash, so an edited file is a miss) wins over
    ``config`` (cache-keyed by every :class:`SynthConfig` field).  The
    task is *named* ``corpus`` with stable params, so every graph built
    from it — the experiment suite, scenario pipelines — shares one
    cached corpus artifact per configuration.
    """
    if corpus_path is not None:
        return Task(
            name="corpus",
            fn=_task_load_corpus,
            params={"path": str(corpus_path), "content": hash_file(corpus_path)},
            version=TASK_VERSIONS["corpus"],
        )
    config = config or SynthConfig()
    return Task(
        name="corpus",
        fn=_task_generate,
        params=dataclasses.asdict(config),
        version=TASK_VERSIONS["corpus"],
        # Generation shards across its own worker pool (ctx.jobs).
        run_in_parent=True,
    )


def index_task() -> Task:
    """The shared ``index`` task (spatial index over the corpus)."""
    return Task(
        name="index",
        fn=_task_index,
        deps=("corpus",),
        version=TASK_VERSIONS["index"],
    )


def _task_table1(ctx: TaskContext):
    return run_table1(ctx.input("corpus"))


def _task_fig1(ctx: TaskContext):
    return run_fig1(ctx.input("corpus"))


def _task_fig2(ctx: TaskContext):
    return run_fig2(ctx.input("corpus"))


def _task_fig3(ctx: TaskContext):
    return run_fig3(_context(ctx))


def _task_fig4(ctx: TaskContext):
    return run_fig4(_context(ctx))


def _task_table2(ctx: TaskContext):
    return table2_from_fig4(ctx.input("fig4"))


def suite_pipeline(
    config: SynthConfig | None = None,
    corpus_path: str | None = None,
    gazetteer: str | None = None,
) -> Pipeline:
    """The experiment-suite DAG over a synthesised or on-disk corpus.

    Exactly one corpus source applies: ``corpus_path`` (cache-keyed by
    the file's content hash, so an edited file is a miss) wins over
    ``config`` (cache-keyed by every :class:`SynthConfig` field).

    ``gazetteer`` selects the *measuring* area system for the
    scale-dependent tasks (fig3/fig4/table2); it defaults to the
    synthesis config's gazetteer so generating and measuring geography
    agree, and participates in those tasks' cache keys.
    """
    if gazetteer is None:
        gazetteer = config.gazetteer if config is not None else "legacy"
    pipeline = Pipeline([corpus_task(config=config, corpus_path=corpus_path)])
    pipeline.add(index_task())
    simple = {"table1": _task_table1, "fig1": _task_fig1, "fig2": _task_fig2}
    for name, fn in simple.items():
        pipeline.add(
            Task(name=name, fn=fn, deps=("corpus",), version=TASK_VERSIONS[name])
        )
    pipeline.add(
        Task(
            name="fig3",
            fn=_task_fig3,
            deps=("corpus", "index"),
            params={"gazetteer": gazetteer},
            version=TASK_VERSIONS["fig3"],
        )
    )
    pipeline.add(
        Task(
            name="fig4",
            fn=_task_fig4,
            deps=("corpus", "index"),
            params={"gazetteer": gazetteer},
            version=TASK_VERSIONS["fig4"],
        )
    )
    pipeline.add(
        Task(
            name="table2",
            fn=_task_table2,
            deps=("fig4",),
            version=TASK_VERSIONS["table2"],
        )
    )
    pipeline.validate()
    return pipeline


def suite_result(run: RunResult) -> ExperimentSuiteResult:
    """Assemble the classic suite result from a run's artifacts."""
    return ExperimentSuiteResult(
        table1=run.artifact("table1"),
        fig1=run.artifact("fig1"),
        fig2=run.artifact("fig2"),
        fig3=run.artifact("fig3"),
        fig4=run.artifact("fig4"),
        table2=run.artifact("table2"),
    )


def run_suite(
    config: SynthConfig | None = None,
    corpus_path: str | None = None,
    store: ArtifactStore | None = None,
    jobs: int = 1,
    force: bool = False,
    targets: tuple[str, ...] | None = None,
    trace: bool = False,
    profile: bool = False,
    gazetteer: str | None = None,
) -> tuple[ExperimentSuiteResult | None, RunResult]:
    """Run (or cache-resolve) the suite; returns (suite, run provenance).

    The first element is ``None`` when ``targets`` excludes part of the
    suite — use :meth:`RunResult.artifact` for partial runs.  ``trace``
    records a span tree into the run manifest; ``profile`` writes
    per-task cProfile hotspot reports into the run directory.
    """
    pipeline = suite_pipeline(config=config, corpus_path=corpus_path, gazetteer=gazetteer)
    executor = Executor(store=store, jobs=jobs, force=force, trace=trace, profile=profile)
    run = executor.run(pipeline, targets=targets)
    if targets is not None and set(ARTEFACT_TASKS) - run.digests.keys():
        return None, run
    return suite_result(run), run


def run_all_experiments_cached(
    config: SynthConfig | None = None,
    corpus_path: str | None = None,
    cache_dir: str | None = None,
    jobs: int = 1,
    force: bool = False,
    gazetteer: str | None = None,
) -> tuple[ExperimentSuiteResult, RunResult]:
    """Pipeline-backed suite: artifact-cached and process-parallel.

    The convenience form of :func:`run_suite` for full-suite callers —
    a warm cache resolves the whole suite without executing a single
    task body.  Returns ``(ExperimentSuiteResult, RunResult)`` — the
    second element carries the run manifest (timings, cache hits,
    digests).
    """
    store = ArtifactStore(cache_dir) if cache_dir else None
    suite, run = run_suite(
        config=config, corpus_path=corpus_path, store=store, jobs=jobs,
        force=force, gazetteer=gazetteer,
    )
    assert suite is not None  # no targets filter -> full suite
    return suite, run
