"""The pipeline DAG: task registry, validation, topological order.

:class:`Pipeline` is a plain container of :class:`~repro.pipeline.task.Task`
nodes with the graph algebra the executor needs: dependency validation,
cycle detection, deterministic topological ordering and target-restricted
subgraphs (``repro pipeline run --targets fig3`` only needs the ancestors
of ``fig3``).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.pipeline.task import PipelineError, Task


class CycleError(PipelineError):
    """The task graph contains a dependency cycle."""

    def __init__(self, cycle: list[str]) -> None:
        super().__init__("dependency cycle: " + " -> ".join(cycle))
        self.cycle = cycle


class Pipeline:
    """An immutable-after-build registry of DAG tasks."""

    def __init__(self, tasks: Iterable[Task] = ()) -> None:
        self._tasks: dict[str, Task] = {}
        for task in tasks:
            self.add(task)

    def add(self, task: Task) -> Task:
        """Register a task; names must be unique."""
        if task.name in self._tasks:
            raise PipelineError(f"duplicate task name {task.name!r}")
        self._tasks[task.name] = task
        return task

    def task(self, name: str) -> Task:
        """Look up one task by name."""
        try:
            return self._tasks[name]
        except KeyError:
            raise PipelineError(f"unknown task {name!r}") from None

    @property
    def names(self) -> tuple[str, ...]:
        """Task names in registration order."""
        return tuple(self._tasks)

    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self) -> Iterator[Task]:
        return iter(self._tasks.values())

    def __contains__(self, name: object) -> bool:
        return name in self._tasks

    # -- graph algebra -------------------------------------------------

    def validate(self) -> None:
        """Raise unless every dependency exists and the graph is acyclic."""
        for task in self:
            for dep in task.deps:
                if dep not in self._tasks:
                    raise PipelineError(
                        f"task {task.name!r} depends on unknown task {dep!r}"
                    )
        self.topological_order()

    def required(self, targets: Iterable[str] | None = None) -> set[str]:
        """Names of the targets plus all their transitive dependencies."""
        if targets is None:
            return set(self._tasks)
        needed: set[str] = set()
        stack = [self.task(name).name for name in targets]
        while stack:
            name = stack.pop()
            if name in needed:
                continue
            needed.add(name)
            stack.extend(self._tasks[name].deps)
        return needed

    def topological_order(self, targets: Iterable[str] | None = None) -> list[Task]:
        """Dependency-respecting task order, restricted to ``targets``.

        Deterministic: among simultaneously ready tasks, registration
        order wins (Kahn's algorithm with an ordered ready list).
        """
        needed = self.required(targets)
        remaining_deps = {
            name: {d for d in self._tasks[name].deps if d in needed}
            for name in self._tasks
            if name in needed
        }
        order: list[Task] = []
        while remaining_deps:
            ready = [name for name, deps in remaining_deps.items() if not deps]
            if not ready:
                raise CycleError(self._find_cycle(remaining_deps))
            for name in ready:
                order.append(self._tasks[name])
                del remaining_deps[name]
            for deps in remaining_deps.values():
                deps.difference_update(ready)
        return order

    @staticmethod
    def _find_cycle(remaining_deps: dict[str, set[str]]) -> list[str]:
        """One concrete cycle among the stuck tasks, for the error message."""
        start = next(iter(remaining_deps))
        seen: list[str] = []
        node = start
        while node not in seen:
            seen.append(node)
            node = next(iter(remaining_deps[node]))
        return seen[seen.index(node) :] + [node]
