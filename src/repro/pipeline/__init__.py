"""DAG-based experiment pipeline with content-addressed artifact caching.

The subsystem has three layers:

* the core runner — :class:`Task`, :class:`Pipeline`, :class:`Executor`
  and the on-disk :class:`ArtifactStore` (``~/.cache/repro`` by default,
  ``REPRO_CACHE_DIR`` or an explicit path to override);
* run provenance — :class:`RunManifest`, one ``manifest.json`` per run;
* the paper's artefact suite expressed as a graph —
  :func:`suite_pipeline` / :func:`run_suite` in
  :mod:`repro.pipeline.graphs`.

Cache keys are content-addressed: a task's key hashes its config, its
code-version tag and the digests of its upstream artifacts, so a change
anywhere upstream re-executes exactly the affected subgraph and nothing
else.
"""

from repro.pipeline.executor import Executor, RunResult
from repro.pipeline.graph import CycleError, Pipeline
from repro.pipeline.graphs import (
    ARTEFACT_TASKS,
    corpus_task,
    index_task,
    run_all_experiments_cached,
    run_suite,
    suite_pipeline,
    suite_result,
)
from repro.pipeline.hashing import fingerprint, hash_file
from repro.pipeline.manifest import RunManifest, TaskRecord
from repro.pipeline.store import ArtifactStore, default_cache_dir
from repro.pipeline.task import PipelineError, Task, TaskContext, TaskFailure

__all__ = [
    "ARTEFACT_TASKS",
    "ArtifactStore",
    "CycleError",
    "Executor",
    "Pipeline",
    "PipelineError",
    "RunManifest",
    "RunResult",
    "Task",
    "TaskContext",
    "TaskFailure",
    "TaskRecord",
    "corpus_task",
    "default_cache_dir",
    "fingerprint",
    "hash_file",
    "index_task",
    "run_all_experiments_cached",
    "run_suite",
    "suite_pipeline",
    "suite_result",
]
