"""Pipeline execution: cache-aware, optionally process-parallel.

The executor walks the DAG in dependency order.  For each task it first
derives the cache key from the task's params/version and the digests of
its upstream artifacts; a key already bound in the store is a *hit* — the
body never runs and only the digest propagates downstream.  Misses run
either in the coordinating process (``jobs=1`` or ``run_in_parent``
tasks) or in a :class:`~concurrent.futures.ProcessPoolExecutor` worker,
which loads its inputs from the store by digest, runs the body, persists
the output and hands the new digest back — artifacts always travel via
the content-addressed store, never through the pickle channel twice.

Every run writes a provenance manifest under ``<cache-dir>/runs/``.
"""

from __future__ import annotations

import time
import uuid
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.pipeline.graph import Pipeline
from repro.pipeline.manifest import (
    STATUS_FAILED,
    STATUS_HIT,
    STATUS_RUN,
    RunManifest,
    TaskRecord,
)
from repro.pipeline.store import ArtifactStore
from repro.pipeline.task import Task, TaskContext, TaskFailure


@dataclass
class RunResult:
    """Digests and provenance of one pipeline run."""

    manifest: RunManifest
    digests: dict[str, str]
    store: ArtifactStore
    _loaded: dict[str, Any] = field(default_factory=dict, repr=False)

    def artifact(self, name: str) -> Any:
        """Load the output artifact of task ``name`` (memoised)."""
        digest = self.digests[name]
        if digest not in self._loaded:
            self._loaded[digest] = self.store.get(digest)
        return self._loaded[digest]


def _worker_execute(
    store_root: str, task: Task, upstream: dict[str, str], key: str, jobs: int
) -> tuple[str, float]:
    """Run one task body inside a pool worker; returns (digest, seconds)."""
    store = ArtifactStore(store_root)
    inputs = {dep: store.get(digest) for dep, digest in upstream.items()}
    ctx = TaskContext(params=task.params, inputs=inputs, jobs=jobs)
    start = time.perf_counter()
    output = task.fn(ctx)
    seconds = time.perf_counter() - start
    digest = store.put(output)
    store.record_key(key, digest, {"task": task.name, "seconds": seconds})
    return digest, seconds


class Executor:
    """Runs a :class:`Pipeline` against an :class:`ArtifactStore`.

    Parameters
    ----------
    store:
        The artifact store (defaults to the default cache directory).
    jobs:
        Maximum concurrently executing task bodies.  ``1`` means fully
        serial in the current process.  The value is also passed to task
        bodies via ``ctx.jobs`` so internally sharded tasks (corpus
        generation) can size their own worker pools.
    force:
        Ignore existing cache entries and re-run every task body
        (outputs are still written back to the store).
    """

    def __init__(
        self,
        store: ArtifactStore | None = None,
        jobs: int = 1,
        force: bool = False,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.store = store if store is not None else ArtifactStore()
        self.jobs = jobs
        self.force = force

    def run(
        self, pipeline: Pipeline, targets: Iterable[str] | None = None
    ) -> RunResult:
        """Execute (or cache-resolve) every task needed for ``targets``.

        Raises :class:`TaskFailure` naming the first failing task; the
        manifest (including the failure record) is written either way.
        """
        pipeline.validate()
        order = pipeline.topological_order(targets)
        manifest = RunManifest(
            run_id=time.strftime("%Y%m%d-%H%M%S") + "-" + uuid.uuid4().hex[:8],
            jobs=self.jobs,
            cache_dir=str(self.store.root),
            targets=sorted(pipeline.required(targets)),
        )
        digests: dict[str, str] = {}
        loaded: dict[str, Any] = {}
        started = time.perf_counter()
        try:
            if self.jobs == 1:
                for task in order:
                    self._resolve_serial(task, digests, loaded, manifest)
            else:
                self._run_parallel(order, digests, loaded, manifest)
        finally:
            manifest.total_seconds = time.perf_counter() - started
            manifest.write(self.store.runs_dir / manifest.run_id)
        return RunResult(
            manifest=manifest, digests=digests, store=self.store, _loaded=loaded
        )

    # -- serial path ---------------------------------------------------

    def _resolve_serial(
        self,
        task: Task,
        digests: dict[str, str],
        loaded: dict[str, Any],
        manifest: RunManifest,
    ) -> None:
        key = task.cache_key(digests)
        cached = None if self.force else self.store.lookup(key)
        if cached is not None:
            digests[task.name] = cached
            manifest.record(
                TaskRecord(task.name, STATUS_HIT, cache_key=key, digest=cached)
            )
            return
        self._execute_in_parent(task, key, digests, loaded, manifest)

    def _execute_in_parent(
        self,
        task: Task,
        key: str,
        digests: dict[str, str],
        loaded: dict[str, Any],
        manifest: RunManifest,
    ) -> None:
        inputs = {}
        for dep in task.deps:
            digest = digests[dep]
            if digest not in loaded:
                loaded[digest] = self.store.get(digest)
            inputs[dep] = loaded[digest]
        ctx = TaskContext(params=task.params, inputs=inputs, jobs=self.jobs)
        start = time.perf_counter()
        try:
            output = task.fn(ctx)
        except Exception as exc:
            manifest.record(
                TaskRecord(
                    task.name,
                    STATUS_FAILED,
                    cache_key=key,
                    seconds=time.perf_counter() - start,
                    error=repr(exc),
                )
            )
            raise TaskFailure(task.name, exc) from exc
        seconds = time.perf_counter() - start
        digest = self.store.put(output)
        loaded[digest] = output
        self.store.record_key(key, digest, {"task": task.name, "seconds": seconds})
        digests[task.name] = digest
        manifest.record(
            TaskRecord(
                task.name, STATUS_RUN, cache_key=key, digest=digest, seconds=seconds
            )
        )

    # -- parallel path -------------------------------------------------

    def _run_parallel(
        self,
        order: list[Task],
        digests: dict[str, str],
        loaded: dict[str, Any],
        manifest: RunManifest,
    ) -> None:
        pending = {task.name: task for task in order}
        running: dict[Any, tuple[Task, str]] = {}
        with ProcessPoolExecutor(max_workers=self.jobs) as pool:
            while pending or running:
                # Launch (or cache-resolve) every task whose deps are done.
                progressed = True
                while progressed:
                    progressed = False
                    for name in list(pending):
                        task = pending[name]
                        if not all(dep in digests for dep in task.deps):
                            continue
                        del pending[name]
                        progressed = True
                        key = task.cache_key(digests)
                        cached = None if self.force else self.store.lookup(key)
                        if cached is not None:
                            digests[name] = cached
                            manifest.record(
                                TaskRecord(
                                    name, STATUS_HIT, cache_key=key, digest=cached
                                )
                            )
                        elif task.run_in_parent:
                            # Tasks that shard internally own the worker
                            # budget while they run in the parent.
                            self._execute_in_parent(
                                task, key, digests, loaded, manifest
                            )
                        else:
                            upstream = {dep: digests[dep] for dep in task.deps}
                            future = pool.submit(
                                _worker_execute,
                                str(self.store.root),
                                task,
                                upstream,
                                key,
                                self.jobs,
                            )
                            running[future] = (task, key)
                if not running:
                    continue
                done, _ = wait(set(running), return_when=FIRST_COMPLETED)
                for future in done:
                    task, key = running.pop(future)
                    try:
                        digest, seconds = future.result()
                    except Exception as exc:
                        manifest.record(
                            TaskRecord(
                                task.name,
                                STATUS_FAILED,
                                cache_key=key,
                                where="worker",
                                error=repr(exc),
                            )
                        )
                        for other in running:
                            other.cancel()
                        raise TaskFailure(task.name, exc) from exc
                    digests[task.name] = digest
                    manifest.record(
                        TaskRecord(
                            task.name,
                            STATUS_RUN,
                            cache_key=key,
                            digest=digest,
                            seconds=seconds,
                            where="worker",
                        )
                    )
