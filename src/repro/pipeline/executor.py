"""Pipeline execution: cache-aware, optionally process-parallel.

The executor walks the DAG in dependency order.  For each task it first
derives the cache key from the task's params/version and the digests of
its upstream artifacts; a key already bound in the store is a *hit* — the
body never runs and only the digest propagates downstream.  Misses run
either in the coordinating process (``jobs=1`` or ``run_in_parent``
tasks) or in a :class:`~concurrent.futures.ProcessPoolExecutor` worker,
which loads its inputs from the store by digest, runs the body, persists
the output and hands the new digest back — artifacts always travel via
the content-addressed store, never through the pickle channel twice.

Every run writes a provenance manifest under ``<cache-dir>/runs/``.

Observability: with ``trace=True`` the executor installs a fresh
:class:`~repro.obs.tracer.Tracer` for the run, wraps every task (hits
included) in a span, and persists the span tree in the manifest's
``trace`` field.  Spans cross the process pool by id handoff: the
coordinator passes the root span id inside the worker payload, the
worker records its spans under that foreign parent and returns them as
plain dicts for the coordinator to adopt.  ``profile=True`` wraps each
executed body in cProfile and drops a top-N hotspot JSON next to the
manifest.  Pool-level failures (startup, submission) are never silent:
they land in the manifest's ``error`` field and raise
:class:`TaskFailure` so callers exit non-zero.
"""

from __future__ import annotations

import time
import uuid
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro import obs
from repro.pipeline.graph import Pipeline
from repro.pipeline.manifest import (
    STATUS_FAILED,
    STATUS_HIT,
    STATUS_RUN,
    RunManifest,
    TaskRecord,
)
from repro.pipeline.store import ArtifactStore
from repro.pipeline.task import Task, TaskContext, TaskFailure

_log = obs.get_logger("repro.pipeline")


@dataclass
class RunResult:
    """Digests and provenance of one pipeline run."""

    manifest: RunManifest
    digests: dict[str, str]
    store: ArtifactStore
    _loaded: dict[str, Any] = field(default_factory=dict, repr=False)

    def artifact(self, name: str) -> Any:
        """Load the output artifact of task ``name`` (memoised)."""
        digest = self.digests[name]
        if digest not in self._loaded:
            self._loaded[digest] = self.store.get(digest)
        return self._loaded[digest]


def _worker_execute(
    store_root: str,
    task: Task,
    upstream: dict[str, str],
    key: str,
    jobs: int,
    run_id: str = "",
    trace_parent: str | None = None,
    profile: bool = False,
) -> tuple[str, float, list[dict], dict | None]:
    """Run one task body inside a pool worker.

    Returns ``(digest, seconds, spans, profile_report)``.  ``spans`` is
    non-empty only when the coordinator traced the run: the worker opens
    its task span under the handed-off ``trace_parent`` id so the
    coordinator's tree stays connected across the process boundary.
    """
    tracer = obs.Tracer(run_id=run_id) if trace_parent is not None else None
    previous = obs.install(tracer) if tracer is not None else None
    profile_report: dict | None = None
    try:
        store = ArtifactStore(store_root)
        inputs = {dep: store.get(digest) for dep, digest in upstream.items()}
        ctx = TaskContext(params=task.params, inputs=inputs, jobs=jobs)
        start = time.perf_counter()
        with obs.span(
            f"task:{task.name}", parent_id=trace_parent, status="run", where="worker"
        ):
            if profile:
                with obs.profiled(f"task:{task.name}") as prof:
                    output = task.fn(ctx)
                profile_report = prof.report.to_dict() if prof.report else None
            else:
                output = task.fn(ctx)
        seconds = time.perf_counter() - start
        digest = store.put(output)
        store.record_key(key, digest, {"task": task.name, "seconds": seconds})
        spans = tracer.to_dicts() if tracer is not None else []
        return digest, seconds, spans, profile_report
    finally:
        if tracer is not None:
            obs.install(previous)


class Executor:
    """Runs a :class:`Pipeline` against an :class:`ArtifactStore`.

    Parameters
    ----------
    store:
        The artifact store (defaults to the default cache directory).
    jobs:
        Maximum concurrently executing task bodies.  ``1`` means fully
        serial in the current process.  The value is also passed to task
        bodies via ``ctx.jobs`` so internally sharded tasks (corpus
        generation) can size their own worker pools.
    force:
        Ignore existing cache entries and re-run every task body
        (outputs are still written back to the store).
    trace:
        Record a span per task (hits included) plus every span the
        instrumented extraction/model code opens underneath, and
        persist the tree in the run manifest.
    profile:
        Wrap each executed task body in cProfile and write a
        ``profile-<task>.json`` hotspot report into the run directory.
    """

    def __init__(
        self,
        store: ArtifactStore | None = None,
        jobs: int = 1,
        force: bool = False,
        trace: bool = False,
        profile: bool = False,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.store = store if store is not None else ArtifactStore()
        self.jobs = jobs
        self.force = force
        self.trace = trace
        self.profile = profile

    def run(
        self, pipeline: Pipeline, targets: Iterable[str] | None = None
    ) -> RunResult:
        """Execute (or cache-resolve) every task needed for ``targets``.

        Raises :class:`TaskFailure` naming the first failing task; the
        manifest (including the failure record, the run-level ``error``
        for failures outside any task body, and the trace when enabled)
        is written either way.
        """
        pipeline.validate()
        order = pipeline.topological_order(targets)
        manifest = RunManifest(
            run_id=time.strftime("%Y%m%d-%H%M%S") + "-" + uuid.uuid4().hex[:8],
            jobs=self.jobs,
            cache_dir=str(self.store.root),
            targets=sorted(pipeline.required(targets)),
        )
        tracer = obs.Tracer(run_id=manifest.run_id) if self.trace else None
        previous_tracer = obs.install(tracer) if tracer is not None else None
        self._profiles: dict[str, dict] = {}
        digests: dict[str, str] = {}
        loaded: dict[str, Any] = {}
        started = time.perf_counter()
        try:
            with _log.bind(run_id=manifest.run_id):
                with obs.span("pipeline.run", jobs=self.jobs) as root:
                    root.set(tasks=len(order))
                    if self.jobs == 1:
                        for task in order:
                            self._resolve_serial(task, digests, loaded, manifest)
                    else:
                        self._run_parallel(order, digests, loaded, manifest)
        except BaseException as exc:
            # Failures that never reached a task record (pool startup,
            # submission) must still be visible in the audit trail.
            if manifest.failed is None and manifest.error is None:
                manifest.error = repr(exc)
            raise
        finally:
            manifest.total_seconds = time.perf_counter() - started
            if tracer is not None:
                obs.install(previous_tracer)
                manifest.trace = tracer.to_dicts()
            run_dir = self.store.runs_dir / manifest.run_id
            manifest.write(run_dir)
            for task_name, report in self._profiles.items():
                obs.write_profile(
                    obs.ProfileReport(**_profile_kwargs(report)),
                    run_dir / f"profile-{task_name}.json",
                )
        return RunResult(
            manifest=manifest, digests=digests, store=self.store, _loaded=loaded
        )

    # -- serial path ---------------------------------------------------

    def _resolve_serial(
        self,
        task: Task,
        digests: dict[str, str],
        loaded: dict[str, Any],
        manifest: RunManifest,
    ) -> None:
        key = task.cache_key(digests)
        cached = None if self.force else self.store.lookup(key)
        if cached is not None:
            with obs.span(f"task:{task.name}", status="hit"):
                pass
            digests[task.name] = cached
            manifest.record(
                TaskRecord(task.name, STATUS_HIT, cache_key=key, digest=cached)
            )
            return
        self._execute_in_parent(task, key, digests, loaded, manifest)

    def _execute_in_parent(
        self,
        task: Task,
        key: str,
        digests: dict[str, str],
        loaded: dict[str, Any],
        manifest: RunManifest,
    ) -> None:
        inputs = {}
        for dep in task.deps:
            digest = digests[dep]
            if digest not in loaded:
                loaded[digest] = self.store.get(digest)
            inputs[dep] = loaded[digest]
        ctx = TaskContext(params=task.params, inputs=inputs, jobs=self.jobs)
        start = time.perf_counter()
        try:
            with _log.bind(task_id=task.name):
                if self.trace:
                    _log.debug("task_started", where="parent")
                with obs.span(f"task:{task.name}", status="run", where="parent"):
                    if self.profile:
                        with obs.profiled(f"task:{task.name}") as prof:
                            output = task.fn(ctx)
                        if prof.report is not None:
                            self._profiles[task.name] = prof.report.to_dict()
                    else:
                        output = task.fn(ctx)
        except Exception as exc:
            manifest.record(
                TaskRecord(
                    task.name,
                    STATUS_FAILED,
                    cache_key=key,
                    seconds=time.perf_counter() - start,
                    error=repr(exc),
                )
            )
            raise TaskFailure(task.name, exc) from exc
        seconds = time.perf_counter() - start
        digest = self.store.put(output)
        loaded[digest] = output
        self.store.record_key(key, digest, {"task": task.name, "seconds": seconds})
        digests[task.name] = digest
        manifest.record(
            TaskRecord(
                task.name, STATUS_RUN, cache_key=key, digest=digest, seconds=seconds
            )
        )
        if self.trace:
            with _log.bind(task_id=task.name):
                _log.debug("task_finished", seconds=round(seconds, 3))

    # -- parallel path -------------------------------------------------

    def _run_parallel(
        self,
        order: list[Task],
        digests: dict[str, str],
        loaded: dict[str, Any],
        manifest: RunManifest,
    ) -> None:
        pending = {task.name: task for task in order}
        running: dict[Any, tuple[Task, str]] = {}
        tracer = obs.current()
        trace_parent = tracer.current_span_id() if tracer is not None else None
        try:
            pool = ProcessPoolExecutor(max_workers=self.jobs)
        except Exception as exc:
            manifest.error = f"worker pool failed to start: {exc!r}"
            raise TaskFailure(next(iter(pending), "<pool>"), exc) from exc
        with pool:
            while pending or running:
                # Launch (or cache-resolve) every task whose deps are done.
                progressed = True
                while progressed:
                    progressed = False
                    for name in list(pending):
                        task = pending[name]
                        if not all(dep in digests for dep in task.deps):
                            continue
                        del pending[name]
                        progressed = True
                        key = task.cache_key(digests)
                        cached = None if self.force else self.store.lookup(key)
                        if cached is not None:
                            with obs.span(f"task:{name}", status="hit"):
                                pass
                            digests[name] = cached
                            manifest.record(
                                TaskRecord(
                                    name, STATUS_HIT, cache_key=key, digest=cached
                                )
                            )
                        elif task.run_in_parent:
                            # Tasks that shard internally own the worker
                            # budget while they run in the parent.
                            self._execute_in_parent(
                                task, key, digests, loaded, manifest
                            )
                        else:
                            upstream = {dep: digests[dep] for dep in task.deps}
                            try:
                                future = pool.submit(
                                    _worker_execute,
                                    str(self.store.root),
                                    task,
                                    upstream,
                                    key,
                                    self.jobs,
                                    manifest.run_id,
                                    trace_parent,
                                    self.profile,
                                )
                            except Exception as exc:
                                # Submission failures (broken pool, an
                                # unpicklable task) must not fall back to
                                # anything silently: record and fail.
                                manifest.record(
                                    TaskRecord(
                                        name,
                                        STATUS_FAILED,
                                        cache_key=key,
                                        where="submit",
                                        error=repr(exc),
                                    )
                                )
                                manifest.error = (
                                    f"worker pool submission failed for task "
                                    f"{name!r}: {exc!r}"
                                )
                                for other in running:
                                    other.cancel()
                                raise TaskFailure(name, exc) from exc
                            running[future] = (task, key)
                if not running:
                    continue
                done, _ = wait(set(running), return_when=FIRST_COMPLETED)
                for future in done:
                    task, key = running.pop(future)
                    try:
                        digest, seconds, spans, profile_report = future.result()
                    except Exception as exc:
                        manifest.record(
                            TaskRecord(
                                task.name,
                                STATUS_FAILED,
                                cache_key=key,
                                where="worker",
                                error=repr(exc),
                            )
                        )
                        for other in running:
                            other.cancel()
                        raise TaskFailure(task.name, exc) from exc
                    if tracer is not None and spans:
                        tracer.adopt(spans)
                    if profile_report is not None:
                        self._profiles[task.name] = profile_report
                    digests[task.name] = digest
                    manifest.record(
                        TaskRecord(
                            task.name,
                            STATUS_RUN,
                            cache_key=key,
                            digest=digest,
                            seconds=seconds,
                            where="worker",
                        )
                    )


def _profile_kwargs(report: dict) -> dict:
    """Filter a profile dict down to ProfileReport's constructor args."""
    keys = (
        "name",
        "total_seconds",
        "total_calls",
        "hotspots",
        "memory_top",
        "peak_memory_kb",
    )
    return {k: report[k] for k in keys if k in report}
