"""Stable fingerprints for configs and artifacts.

Cache keys must be reproducible across processes and interpreter
sessions, so everything is reduced to a canonical JSON document before
hashing: dataclasses become tagged field maps, enums their class+value,
numpy arrays a (dtype, shape, content-hash) triple, dict keys are
sorted.  Two objects fingerprint equal iff they are semantically equal
under this reduction — object identity, insertion order and memory
layout never leak into the key.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from pathlib import Path
from typing import Any

import numpy as np

#: Hex-digest length kept everywhere; 32 hex chars = 128 bits, far below
#: any realistic collision risk for a per-machine artifact cache.
DIGEST_LEN = 32


def hash_bytes(data: bytes) -> str:
    """SHA-256 hex digest of raw bytes, truncated to :data:`DIGEST_LEN`."""
    return hashlib.sha256(data).hexdigest()[:DIGEST_LEN]


def hash_file(path: str | Path, chunk_size: int = 1 << 20) -> str:
    """Streaming SHA-256 of a file's contents."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        while chunk := handle.read(chunk_size):
            digest.update(chunk)
    return digest.hexdigest()[:DIGEST_LEN]


def canonicalize(obj: Any) -> Any:
    """Reduce ``obj`` to a JSON-serialisable canonical form.

    Raises ``TypeError`` for values with no stable representation
    (arbitrary class instances), because silently falling back to
    ``repr`` would bake memory addresses into cache keys.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # repr() is the shortest round-trip representation — exact.
        return {"__float__": repr(obj)}
    if isinstance(obj, enum.Enum):
        return {"__enum__": type(obj).__name__, "value": canonicalize(obj.value)}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {
            f.name: canonicalize(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
        return {"__dataclass__": type(obj).__name__, "fields": fields}
    if isinstance(obj, dict):
        return {
            "__dict__": sorted(
                (str(key), canonicalize(value)) for key, value in obj.items()
            )
        }
    if isinstance(obj, (list, tuple)):
        return [canonicalize(item) for item in obj]
    if isinstance(obj, (set, frozenset)):
        return {"__set__": sorted(json.dumps(canonicalize(i)) for i in obj)}
    if isinstance(obj, np.ndarray):
        contiguous = np.ascontiguousarray(obj)
        return {
            "__ndarray__": hash_bytes(contiguous.tobytes()),
            "dtype": str(contiguous.dtype),
            "shape": list(contiguous.shape),
        }
    if isinstance(obj, np.generic):
        return canonicalize(obj.item())
    if isinstance(obj, Path):
        return {"__path__": str(obj)}
    if isinstance(obj, bytes):
        return {"__bytes__": hash_bytes(obj)}
    raise TypeError(
        f"cannot canonicalize {type(obj).__name__!r} for hashing; "
        "use plain data, dataclasses, enums or numpy arrays"
    )


def fingerprint(obj: Any) -> str:
    """Stable hex fingerprint of any canonicalizable value."""
    document = json.dumps(
        canonicalize(obj), sort_keys=True, separators=(",", ":")
    )
    return hash_bytes(document.encode("utf-8"))


def combine(*parts: str) -> str:
    """Fold several hex digests into one (order-sensitive)."""
    return hash_bytes("\x1f".join(parts).encode("utf-8"))
