"""Run provenance: what executed, what was cached, how long it took.

Every executor run writes a ``manifest.json`` under
``<cache-dir>/runs/<run-id>/`` recording, per task, whether the body ran
or the cache served it, the cache key and artifact digest involved, and
wall-clock seconds.  Manifests are the audit trail for the caching
guarantees: a warm re-run of an unchanged config shows every task as a
``hit`` with zero executed bodies.

A traced run (``repro pipeline run --trace``) additionally lands its
span tree in the manifest's ``trace`` field — plain span dicts from
:mod:`repro.obs.tracer`, renderable with ``repro trace show <run-id>``
or exportable as Chrome trace-event JSON.  Run-level failures that never
reach a task body (worker-pool startup, submission errors) surface in
the ``error`` field so no failure mode is silent in the audit trail.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

#: Task record statuses.
STATUS_RUN = "run"
STATUS_HIT = "hit"
STATUS_FAILED = "failed"


@dataclass(frozen=True)
class TaskRecord:
    """Provenance of one task within one run."""

    name: str
    status: str
    cache_key: str = ""
    digest: str = ""
    seconds: float = 0.0
    where: str = "parent"
    error: str | None = None


@dataclass
class RunManifest:
    """Provenance of one executor run."""

    run_id: str
    jobs: int
    cache_dir: str
    targets: list[str] = field(default_factory=list)
    total_seconds: float = 0.0
    records: list[TaskRecord] = field(default_factory=list)
    #: Span dicts recorded when the run was traced (empty otherwise).
    trace: list[dict] = field(default_factory=list)
    #: Run-level error that never reached a task record (pool startup,
    #: task submission); ``None`` for clean runs.
    error: str | None = None

    def record(self, record: TaskRecord) -> None:
        """Append one task record."""
        self.records.append(record)

    @property
    def hits(self) -> int:
        """How many tasks were served from cache."""
        return sum(1 for r in self.records if r.status == STATUS_HIT)

    @property
    def executed(self) -> int:
        """How many task bodies actually ran."""
        return sum(1 for r in self.records if r.status == STATUS_RUN)

    @property
    def failed(self) -> str | None:
        """The name of the failed task, if any."""
        for record in self.records:
            if record.status == STATUS_FAILED:
                return record.name
        return None

    @property
    def ok(self) -> bool:
        """Whether the run finished with no task or run-level failure."""
        return self.failed is None and self.error is None

    def to_dict(self) -> dict:
        """Plain-data form, ready for ``json.dump``."""
        return {
            "run_id": self.run_id,
            "jobs": self.jobs,
            "cache_dir": self.cache_dir,
            "targets": list(self.targets),
            "total_seconds": self.total_seconds,
            "hits": self.hits,
            "executed": self.executed,
            "error": self.error,
            "records": [asdict(r) for r in self.records],
            "trace": list(self.trace),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunManifest":
        """Rebuild a manifest from its ``to_dict`` form."""
        records = [
            TaskRecord(
                name=r["name"],
                status=r["status"],
                cache_key=r.get("cache_key", ""),
                digest=r.get("digest", ""),
                seconds=r.get("seconds", 0.0),
                where=r.get("where", "parent"),
                error=r.get("error"),
            )
            for r in data.get("records", [])
        ]
        return cls(
            run_id=data["run_id"],
            jobs=data.get("jobs", 1),
            cache_dir=data.get("cache_dir", ""),
            targets=list(data.get("targets", [])),
            total_seconds=data.get("total_seconds", 0.0),
            records=records,
            trace=list(data.get("trace", [])),
            error=data.get("error"),
        )

    @classmethod
    def load(cls, path: str | Path) -> "RunManifest":
        """Read a ``manifest.json`` written by :meth:`write`."""
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        return cls.from_dict(data)

    def digest_of(self, task_name: str) -> str | None:
        """The artifact digest a run bound to ``task_name``, if any."""
        for record in self.records:
            if record.name == task_name and record.digest:
                return record.digest
        return None

    def write(self, directory: str | Path) -> Path:
        """Write ``manifest.json`` into ``directory``; returns its path."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / "manifest.json"
        path.write_text(
            json.dumps(self.to_dict(), indent=2) + "\n", encoding="utf-8"
        )
        return path

    def summary(self) -> str:
        """One human line per task plus a totals footer."""
        lines = []
        for record in self.records:
            mark = {STATUS_HIT: "cached", STATUS_RUN: "ran", STATUS_FAILED: "FAILED"}[
                record.status
            ]
            lines.append(
                f"  {record.name:<12s} {mark:<7s} {record.seconds:7.2f}s"
                f"  key={record.cache_key[:12]}  out={record.digest[:12]}"
            )
        lines.append(
            f"  total {self.total_seconds:.2f}s — {self.executed} executed, "
            f"{self.hits} cache hits (jobs={self.jobs})"
        )
        if self.error is not None:
            lines.append(f"  run error: {self.error}")
        if self.trace:
            lines.append(f"  trace: {len(self.trace)} spans recorded")
        return "\n".join(lines)
