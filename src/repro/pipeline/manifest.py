"""Run provenance: what executed, what was cached, how long it took.

Every executor run writes a ``manifest.json`` under
``<cache-dir>/runs/<run-id>/`` recording, per task, whether the body ran
or the cache served it, the cache key and artifact digest involved, and
wall-clock seconds.  Manifests are the audit trail for the caching
guarantees: a warm re-run of an unchanged config shows every task as a
``hit`` with zero executed bodies.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

#: Task record statuses.
STATUS_RUN = "run"
STATUS_HIT = "hit"
STATUS_FAILED = "failed"


@dataclass(frozen=True)
class TaskRecord:
    """Provenance of one task within one run."""

    name: str
    status: str
    cache_key: str = ""
    digest: str = ""
    seconds: float = 0.0
    where: str = "parent"
    error: str | None = None


@dataclass
class RunManifest:
    """Provenance of one executor run."""

    run_id: str
    jobs: int
    cache_dir: str
    targets: list[str] = field(default_factory=list)
    total_seconds: float = 0.0
    records: list[TaskRecord] = field(default_factory=list)

    def record(self, record: TaskRecord) -> None:
        """Append one task record."""
        self.records.append(record)

    @property
    def hits(self) -> int:
        """How many tasks were served from cache."""
        return sum(1 for r in self.records if r.status == STATUS_HIT)

    @property
    def executed(self) -> int:
        """How many task bodies actually ran."""
        return sum(1 for r in self.records if r.status == STATUS_RUN)

    @property
    def failed(self) -> str | None:
        """The name of the failed task, if any."""
        for record in self.records:
            if record.status == STATUS_FAILED:
                return record.name
        return None

    def to_dict(self) -> dict:
        """Plain-data form, ready for ``json.dump``."""
        return {
            "run_id": self.run_id,
            "jobs": self.jobs,
            "cache_dir": self.cache_dir,
            "targets": list(self.targets),
            "total_seconds": self.total_seconds,
            "hits": self.hits,
            "executed": self.executed,
            "records": [asdict(r) for r in self.records],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunManifest":
        """Rebuild a manifest from its ``to_dict`` form."""
        records = [
            TaskRecord(
                name=r["name"],
                status=r["status"],
                cache_key=r.get("cache_key", ""),
                digest=r.get("digest", ""),
                seconds=r.get("seconds", 0.0),
                where=r.get("where", "parent"),
                error=r.get("error"),
            )
            for r in data.get("records", [])
        ]
        return cls(
            run_id=data["run_id"],
            jobs=data.get("jobs", 1),
            cache_dir=data.get("cache_dir", ""),
            targets=list(data.get("targets", [])),
            total_seconds=data.get("total_seconds", 0.0),
            records=records,
        )

    @classmethod
    def load(cls, path: str | Path) -> "RunManifest":
        """Read a ``manifest.json`` written by :meth:`write`."""
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        return cls.from_dict(data)

    def digest_of(self, task_name: str) -> str | None:
        """The artifact digest a run bound to ``task_name``, if any."""
        for record in self.records:
            if record.name == task_name and record.digest:
                return record.digest
        return None

    def write(self, directory: str | Path) -> Path:
        """Write ``manifest.json`` into ``directory``; returns its path."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / "manifest.json"
        path.write_text(
            json.dumps(self.to_dict(), indent=2) + "\n", encoding="utf-8"
        )
        return path

    def summary(self) -> str:
        """One human line per task plus a totals footer."""
        lines = []
        for record in self.records:
            mark = {STATUS_HIT: "cached", STATUS_RUN: "ran", STATUS_FAILED: "FAILED"}[
                record.status
            ]
            lines.append(
                f"  {record.name:<12s} {mark:<7s} {record.seconds:7.2f}s"
                f"  key={record.cache_key[:12]}  out={record.digest[:12]}"
            )
        lines.append(
            f"  total {self.total_seconds:.2f}s — {self.executed} executed, "
            f"{self.hits} cache hits (jobs={self.jobs})"
        )
        return "\n".join(lines)
