"""Task definitions for the experiment pipeline.

A :class:`Task` is a named, pure unit of work: it reads the outputs of
its declared dependencies, runs a top-level function and returns one
artifact.  The executor decides whether the body actually runs — a task
whose cache key (config fingerprint + upstream digests + code version)
is already bound in the store is skipped entirely.

``fn`` must be a module-level callable so tasks can cross process
boundaries under the parallel executor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.pipeline.hashing import fingerprint, hash_bytes


class PipelineError(Exception):
    """Base error for pipeline construction and execution problems."""


class TaskFailure(PipelineError):
    """A task body raised; carries the failing task's name."""

    def __init__(self, task_name: str, cause: BaseException) -> None:
        super().__init__(f"task {task_name!r} failed: {cause!r}")
        self.task_name = task_name
        self.cause = cause


@dataclass(frozen=True)
class Task:
    """One node of the pipeline DAG.

    Attributes
    ----------
    name:
        Unique node name within a pipeline.
    fn:
        Module-level callable ``fn(ctx: TaskContext) -> artifact``.
    deps:
        Names of upstream tasks whose outputs this task reads.
    params:
        Configuration hashed into the cache key (any canonicalizable
        value — dataclasses, dicts, numbers).  Also available to the
        body as ``ctx.params``.
    version:
        Code-version tag.  Bump it when the task's implementation
        changes meaning, to invalidate previously cached outputs.
    run_in_parent:
        Always execute in the coordinating process, even under a
        parallel executor.  Used by tasks that manage their own worker
        pool (sharded corpus generation).
    """

    name: str
    fn: Callable[["TaskContext"], Any]
    deps: tuple[str, ...] = ()
    params: Any = None
    version: str = "1"
    run_in_parent: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise PipelineError("task name must be non-empty")
        if len(set(self.deps)) != len(self.deps):
            raise PipelineError(f"task {self.name!r} lists a duplicate dependency")

    def cache_key(self, upstream_digests: Mapping[str, str]) -> str:
        """The content-addressed cache key of this task's output.

        Combines the task identity, its code version, the fingerprint of
        its params and the digest of every upstream artifact, so any
        change in configuration or inputs (transitively, in upstream
        code versions) yields a fresh key.
        """
        missing = [dep for dep in self.deps if dep not in upstream_digests]
        if missing:
            raise PipelineError(
                f"task {self.name!r} cache key needs upstream digests for {missing}"
            )
        payload = "\x1f".join(
            [
                "task",
                self.name,
                "v" + self.version,
                fingerprint(self.params),
            ]
            + [f"{dep}={upstream_digests[dep]}" for dep in sorted(self.deps)]
        )
        return hash_bytes(payload.encode("utf-8"))


@dataclass(frozen=True)
class TaskContext:
    """What a task body sees: its params, its inputs, the jobs knob."""

    params: Any = None
    inputs: Mapping[str, Any] = field(default_factory=dict)
    jobs: int = 1

    def input(self, name: str) -> Any:
        """The artifact produced by upstream task ``name``."""
        try:
            return self.inputs[name]
        except KeyError:
            raise PipelineError(
                f"task requested input {name!r} but only {sorted(self.inputs)} "
                "were provided — declare the dependency in Task.deps"
            ) from None
