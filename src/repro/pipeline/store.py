"""Content-addressed on-disk artifact store.

Layout under the store root (``~/.cache/repro`` by default, overridable
via the ``REPRO_CACHE_DIR`` environment variable or an explicit path)::

    objects/<digest>.pkl   pickled artifact, named by content digest
    keys/<cache-key>.json  cache-key -> {digest, task, meta} record
    runs/<run-id>/         one directory per executor run (manifest.json)

Objects are immutable: a digest fully determines the bytes, so ``put``
is a no-op when the object already exists and concurrent writers (the
process-parallel executor) can race safely — both write the same bytes
via a temp file + atomic rename.
"""

from __future__ import annotations

import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any

from repro.pipeline.hashing import hash_bytes

#: Pickle protocol pinned so digests are stable across interpreter runs.
PICKLE_PROTOCOL = 4


def default_cache_dir() -> Path:
    """The store root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override).expanduser()
    return Path.home() / ".cache" / "repro"


def _atomic_write(path: Path, data: bytes) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=".tmp-")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:  # repro: allow[hygiene] best-effort cleanup; original error re-raises
            pass
        raise


class ArtifactStore:
    """Pickle-backed content-addressed store with a cache-key index."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root).expanduser() if root else default_cache_dir()
        self.objects_dir = self.root / "objects"
        self.keys_dir = self.root / "keys"
        self.runs_dir = self.root / "runs"

    # -- objects -------------------------------------------------------

    def _object_path(self, digest: str) -> Path:
        return self.objects_dir / f"{digest}.pkl"

    def put(self, obj: Any) -> str:
        """Persist an artifact; returns its content digest."""
        data = pickle.dumps(obj, protocol=PICKLE_PROTOCOL)
        digest = hash_bytes(data)
        path = self._object_path(digest)
        if not path.exists():
            _atomic_write(path, data)
        return digest

    def get(self, digest: str) -> Any:
        """Load an artifact by digest."""
        with open(self._object_path(digest), "rb") as handle:
            return pickle.load(handle)

    def has_object(self, digest: str) -> bool:
        """Whether an artifact with this digest is on disk."""
        return self._object_path(digest).exists()

    # -- cache keys ----------------------------------------------------

    def _key_path(self, key: str) -> Path:
        return self.keys_dir / f"{key}.json"

    def record_key(self, key: str, digest: str, meta: dict | None = None) -> None:
        """Bind a task cache key to an artifact digest."""
        record = {"digest": digest, **(meta or {})}
        _atomic_write(
            self._key_path(key), json.dumps(record, indent=2).encode("utf-8")
        )

    def lookup(self, key: str) -> str | None:
        """The digest bound to ``key``, if both key and object exist."""
        meta = self.key_meta(key)
        if meta is None:
            return None
        digest = meta.get("digest")
        if not digest or not self.has_object(digest):
            return None
        return digest

    def key_meta(self, key: str) -> dict | None:
        """The full key record (digest plus metadata), if present."""
        path = self._key_path(key)
        if not path.exists():
            return None
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None

    def keys_with_prefix(self, prefix: str) -> list[str]:
        """Every recorded cache key starting with ``prefix``, sorted.

        Keys may contain ``/`` (they map to subdirectories under
        ``keys/``), which namespaced families — the summary store's
        ``summary/<namespace>/<tier>/<start>`` tiles — rely on to
        enumerate their members.
        """
        if not self.keys_dir.exists():
            return []
        keys = []
        for path in self.keys_dir.rglob("*.json"):
            key = path.relative_to(self.keys_dir).as_posix()[: -len(".json")]
            if key.startswith(prefix):
                keys.append(key)
        return sorted(keys)

    # -- runs ----------------------------------------------------------

    def run_ids(self) -> list[str]:
        """Every recorded run id, oldest first.

        Run ids start with a ``%Y%m%d-%H%M%S`` stamp, so lexicographic
        order is chronological order.
        """
        if not self.runs_dir.exists():
            return []
        return sorted(
            p.name for p in self.runs_dir.iterdir()
            if (p / "manifest.json").is_file()
        )

    def load_run(self, run_id: str):
        """The :class:`RunManifest` of one recorded run, or ``None``."""
        from repro.pipeline.manifest import RunManifest

        path = self.runs_dir / run_id / "manifest.json"
        try:
            return RunManifest.load(path)
        except (OSError, ValueError, KeyError):
            return None

    def latest_successful_run(self, required: tuple[str, ...] = ("corpus",)):
        """The newest run whose ``required`` artifacts are all servable.

        A run qualifies when it recorded no failed task and no run-level
        error, bound a digest to every name in ``required``, and each of
        those objects is still present on disk (a ``clean`` may have
        removed them).  Returns the :class:`RunManifest`, or ``None``
        when no run qualifies — the serving registry's snapshot source.
        """
        for run_id in reversed(self.run_ids()):
            manifest = self.load_run(run_id)
            if manifest is None or not manifest.ok:
                continue
            digests = [manifest.digest_of(name) for name in required]
            if all(d is not None and self.has_object(d) for d in digests):
                return manifest
        return None

    # -- maintenance ---------------------------------------------------

    def clear(self) -> int:
        """Delete every object, key and run record; returns files removed."""
        removed = 0
        for directory in (self.objects_dir, self.keys_dir, self.runs_dir):
            if not directory.exists():
                continue
            for path in sorted(directory.rglob("*"), reverse=True):
                if path.is_file():
                    path.unlink()
                    removed += 1
                else:
                    path.rmdir()
        return removed

    def size_bytes(self) -> int:
        """Total bytes held by stored artifacts."""
        if not self.objects_dir.exists():
            return 0
        return sum(p.stat().st_size for p in self.objects_dir.glob("*.pkl"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArtifactStore({str(self.root)!r})"
