"""repro — reproduction of Liu et al., "Multi-scale Population and
Mobility Estimation with Geo-tagged Tweets" (ICDE 2015).

The package estimates population distributions and inter-area mobility
from geo-tagged tweets, compares Gravity and Radiation mobility models
at national/state/metropolitan scales, and extends the pipeline to
metapopulation disease-spread forecasting.

Quick start::

    from repro.synth import SynthConfig, generate_corpus
    from repro.experiments import run_all_experiments

    corpus = generate_corpus(SynthConfig(n_users=40_000)).corpus
    print(run_all_experiments(corpus).render())

Subpackages
-----------
``repro.geo``         geodesy, spatial indexing, density grids
``repro.data``        tweet records, Australian gazetteer, I/O, corpus
``repro.synth``       synthetic geo-tagged tweet generator
``repro.extraction``  population / mobility / dynamics extraction
``repro.models``      Gravity, Radiation, intervening opportunities
``repro.stats``       correlation, binning, metrics, power-law fits
``repro.experiments`` one module per paper table/figure
``repro.epidemic``    metapopulation SEIR on fitted mobility networks
``repro.viz``         terminal figure rendering
"""

__version__ = "1.0.0"

from repro.data.corpus import TweetCorpus
from repro.data.gazetteer import Scale
from repro.synth.config import SynthConfig
from repro.synth.generator import generate_corpus

__all__ = ["Scale", "SynthConfig", "TweetCorpus", "__version__", "generate_corpus"]
