"""Live tweet ingest: a lock-guarded :class:`MobilityMonitor`.

``POST /v1/ingest`` delivers tweet batches from arbitrary HTTP client
threads, but the monitor (and the sliding-window counters under it) is
a strictly single-writer, time-ordered structure.  :class:`IngestService`
is the adapter: one mutex serialises all monitor access, each batch is
sorted by timestamp before pushing, and tweets older than the stream's
high-water mark are *dropped and counted* rather than raising — an HTTP
client cannot be trusted to deliver globally ordered batches.

Reads (``/v1/anomalies``) take the same lock, so anomaly listings are
consistent with completed batches — a deliberate single-writer design,
documented in DESIGN.md.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Sequence

from repro.core.world import World
from repro.data.gazetteer import Area
from repro.data.schema import Tweet, parse_tweet_record
from repro.stream.monitor import FlowAnomaly, MobilityMonitor


@dataclass(frozen=True)
class IngestResult:
    """Outcome of one ingest batch."""

    accepted: int
    dropped_stale: int
    anomalies_raised: int


class IngestService:
    """Thread-safe facade over a windowed mobility monitor."""

    def __init__(
        self,
        areas: Sequence[Area] | World,
        radius_km: float,
        window_seconds: float = 3600.0,
        **monitor_kwargs,
    ) -> None:
        self._lock = threading.Lock()
        self._monitor = MobilityMonitor(
            areas, radius_km, window_seconds, **monitor_kwargs
        )
        self._accepted = 0
        self._dropped_stale = 0

    @staticmethod
    def parse_tweet(record: dict) -> Tweet:
        """Build a validated :class:`Tweet` from one JSON object.

        Delegates to the canonical
        :func:`~repro.data.schema.parse_tweet_record`, so HTTP clients
        see exactly the error messages the batch file loaders produce.
        Raises :class:`~repro.data.schema.SchemaError` on missing or
        out-of-range fields.
        """
        return parse_tweet_record(record)

    def ingest(self, tweets: Sequence[Tweet]) -> IngestResult:
        """Push one batch through the monitor, oldest first.

        Within-batch disorder is repaired by sorting; tweets behind the
        monitor's high-water mark are dropped (counted, not an error).
        The surviving batch is labelled in one vectorised pass
        (:meth:`MobilityMonitor.push_batch`) — the same kernel the batch
        extractors run.
        """
        ordered = sorted(tweets, key=lambda t: t.timestamp)
        with self._lock:
            # The batch is ascending, so only a prefix can sit behind
            # the monitor's high-water mark.
            watermark = self._monitor.counter._latest
            keep = 0
            while keep < len(ordered) and ordered[keep].timestamp < watermark:
                keep += 1
            dropped = keep
            accepted = len(ordered) - dropped
            anomalies = len(self._monitor.push_batch(ordered[keep:]))
            self._accepted += accepted
            self._dropped_stale += dropped
        return IngestResult(
            accepted=accepted, dropped_stale=dropped, anomalies_raised=anomalies
        )

    def anomalies(self) -> list[FlowAnomaly]:
        """Every anomaly raised so far (consistent with complete batches)."""
        with self._lock:
            return self._monitor.anomalies

    def check_now(self) -> list[FlowAnomaly]:
        """Force an anomaly check at the current stream time."""
        with self._lock:
            return self._monitor.check_now()

    def stats(self) -> dict:
        """Ingest counters plus current window state."""
        with self._lock:
            monitor = self._monitor
            return {
                "accepted": self._accepted,
                "dropped_stale": self._dropped_stale,
                "window_transitions": monitor.counter.total_transitions,
                "checks_done": monitor._checks_done,
                "anomalies_total": len(monitor._anomalies),
                "has_windowed_fit": monitor.latest_fit is not None,
            }
