"""Live tweet ingest: a lock-guarded :class:`MobilityMonitor`.

``POST /v1/ingest`` delivers tweet batches from arbitrary HTTP client
threads, but the monitor (and the sliding-window counters under it) is
a strictly single-writer, time-ordered structure.  :class:`IngestService`
is the adapter: one mutex serialises all monitor access, each batch is
sorted by timestamp before pushing, and tweets older than the stream's
high-water mark are *dropped and counted* rather than raising — an HTTP
client cannot be trusted to deliver globally ordered batches.

Reads (``/v1/anomalies``) take the same lock, so anomaly listings are
consistent with completed batches — a deliberate single-writer design,
documented in DESIGN.md.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Sequence

from repro.data.gazetteer import Area
from repro.data.schema import SchemaError, Tweet
from repro.stream.monitor import FlowAnomaly, MobilityMonitor


@dataclass(frozen=True)
class IngestResult:
    """Outcome of one ingest batch."""

    accepted: int
    dropped_stale: int
    anomalies_raised: int


class IngestService:
    """Thread-safe facade over a windowed mobility monitor."""

    def __init__(
        self,
        areas: Sequence[Area],
        radius_km: float,
        window_seconds: float = 3600.0,
        **monitor_kwargs,
    ) -> None:
        self._lock = threading.Lock()
        self._monitor = MobilityMonitor(
            areas, radius_km, window_seconds, **monitor_kwargs
        )
        self._accepted = 0
        self._dropped_stale = 0

    @staticmethod
    def parse_tweet(record: dict) -> Tweet:
        """Build a validated :class:`Tweet` from one JSON object.

        Raises :class:`~repro.data.schema.SchemaError` on missing or
        out-of-range fields.
        """
        if not isinstance(record, dict):
            raise SchemaError(f"tweet must be an object, got {type(record).__name__}")
        try:
            return Tweet(
                user_id=int(record["user_id"]),
                timestamp=float(record["timestamp"]),
                lat=float(record["lat"]),
                lon=float(record["lon"]),
                tweet_id=int(record.get("tweet_id", -1)),
            )
        except KeyError as exc:
            raise SchemaError(f"tweet missing field {exc.args[0]!r}") from exc
        except (TypeError, ValueError) as exc:
            raise SchemaError(str(exc)) from exc

    def ingest(self, tweets: Sequence[Tweet]) -> IngestResult:
        """Push one batch through the monitor, oldest first.

        Within-batch disorder is repaired by sorting; tweets behind the
        monitor's high-water mark are dropped (counted, not an error).
        """
        ordered = sorted(tweets, key=lambda t: t.timestamp)
        accepted = 0
        dropped = 0
        anomalies = 0
        with self._lock:
            watermark = self._monitor.counter._latest
            for tweet in ordered:
                if tweet.timestamp < watermark:
                    dropped += 1
                    continue
                anomalies += len(self._monitor.push(tweet))
                watermark = tweet.timestamp
            accepted = len(ordered) - dropped
            self._accepted += accepted
            self._dropped_stale += dropped
        return IngestResult(
            accepted=accepted, dropped_stale=dropped, anomalies_raised=anomalies
        )

    def anomalies(self) -> list[FlowAnomaly]:
        """Every anomaly raised so far (consistent with complete batches)."""
        with self._lock:
            return self._monitor.anomalies

    def check_now(self) -> list[FlowAnomaly]:
        """Force an anomaly check at the current stream time."""
        with self._lock:
            return self._monitor.check_now()

    def stats(self) -> dict:
        """Ingest counters plus current window state."""
        with self._lock:
            monitor = self._monitor
            return {
                "accepted": self._accepted,
                "dropped_stale": self._dropped_stale,
                "window_transitions": monitor.counter.total_transitions,
                "checks_done": monitor._checks_done,
                "anomalies_total": len(monitor._anomalies),
                "has_windowed_fit": monitor.latest_fit is not None,
            }
