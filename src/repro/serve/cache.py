"""A small thread-safe LRU cache for idempotent GET responses.

Values are fully rendered response bodies keyed by
``(path, query, snapshot run id, summary version)`` — including the run
id and the summary store's monotonic version means a registry
hot-reload *or* a summary ingest implicitly invalidates every cached
entry it could affect without any coordination: stale keys simply age
out of the LRU.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Hashable


class LRUCache:
    """Bounded mapping with least-recently-used eviction."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: OrderedDict[Hashable, object] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: Hashable):
        """The cached value, or ``None``; refreshes recency on hit."""
        with self._lock:
            if key not in self._entries:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return self._entries[key]

    def put(self, key: Hashable, value: object) -> None:
        """Insert (or refresh) an entry, evicting the oldest if full."""
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry (hit/miss counters are kept)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
