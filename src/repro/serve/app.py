"""The HTTP estimation service (stdlib-only).

Architecture: :class:`EstimationApp` is the transport-free core — a
router mapping ``(method, path)`` to handlers that take parsed query and
body values and return ``(status, payload)`` — so every endpoint is unit
testable without opening a socket.  :class:`RequestHandler` adapts it to
``http.server``: it enforces body limits, parses JSON, serialises
responses and emits one structured JSON access-log line per request.
:class:`EstimationServer` is a :class:`~http.server.ThreadingHTTPServer`
configured to *drain* in-flight requests on shutdown (non-daemon handler
threads joined by ``server_close``).

Every request carries a ``request_id`` — taken from an incoming
``X-Request-Id`` header or generated — which is echoed in the response
header, attached to the structured access-log record, recorded against
the metrics ring buffers and stamped on the request's trace span, so one
id correlates a request across all three surfaces.

Consistency: each handler resolves the registry snapshot exactly once
(via :meth:`EstimationApp._resolve_scale`) and derives *everything* in
the response — scale data, ``run_id``, ``corpus_digest`` — from that one
object, so a concurrent hot-reload can never produce a response mixing
two snapshots.

Endpoints
---------
========  =====================  ==========================================
GET       ``/healthz``           liveness + current snapshot identity
GET       ``/metrics``           per-endpoint counters and latency quantiles
GET       ``/v1/population``     per-area census vs Twitter population;
                                 ``?window=t0:t1`` answers from the summary
                                 store with ``staleness_seconds``
GET       ``/v1/flows``          OD flow matrix entries, filterable;
                                 ``?window=t0:t1`` served from summary tiles
POST      ``/v1/predict``        batch OD predictions from fitted models
POST      ``/v1/ingest``         push a tweet batch into the live monitor
                                 (and the summary store's minute tiles)
GET       ``/v1/anomalies``      flow anomalies raised by the monitor
POST      ``/v1/reload``         force a registry reload check
==========================================================================

Windowed queries (``window=t0:t1``, Unix seconds, half-open) are
answered from :class:`~repro.summary.store.SummaryStore` rollups in
O(buckets-touched); unwindowed queries keep serving the registry
snapshot.  The response cache is keyed on the registry run id *and* the
summary store's monotonic version, so an ingest immediately invalidates
any windowed answer it could have changed.

Worker mode (``repro.cluster``)
-------------------------------
The app also runs as one shard of a pre-fork cluster.  Two hooks keep
the layering clean (``serve`` never imports ``cluster``):

* ``shard_router`` — an object the cluster layer attaches after
  construction.  When set, un-``forwarded`` ingest batches and windowed
  reads are delegated to it (consistent-hash split / scatter-gather);
  requests carrying ``forwarded=1`` are always handled locally, which
  is what makes forwarding loop-free.
* ``cache_shard_key`` — folded into every response-cache key so two
  shards sharing one artifact store can never replay each other's
  answers.  Gathered (cluster-wide) windowed answers bypass the local
  cache entirely: their freshness depends on every shard's summary
  version, which a single worker's key cannot see.  Per-shard
  (``forwarded=1``) answers still cache normally on each worker.

:class:`EstimationServer` can adopt an already-bound, already-listening
socket (``sock=...``) instead of binding one — the pre-fork idiom where
the supervisor binds once and every forked worker accepts on the
inherited socket.  ``server_close`` drains in-flight requests and
then calls :meth:`EstimationApp.drain`, which flushes open summary
buckets to the artifact store — a SIGTERM mid-minute no longer loses
the unfinalized bucket.

Errors are JSON bodies ``{"error": {"code": ..., "message": ...}}`` with
the matching HTTP status.  Redirects (the shard router's 307 for a
batch owned wholly by another shard) carry
``{"redirect": {"location": ..., "shard": ...}}`` and a ``Location``
header.
"""

from __future__ import annotations

import json
import signal
import socket as socket_module
import sys
import threading
import time
import uuid
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable
from urllib.parse import parse_qsl, urlsplit

import numpy as np

from repro import obs
from repro.core.world import World
from repro.data.gazetteer import Scale, gazetteer_from_spec
from repro.data.schema import SchemaError
from repro.pipeline.store import ArtifactStore
from repro.serve.cache import LRUCache
from repro.serve.ingest import IngestService
from repro.serve.metrics import MetricsRegistry
from repro.serve.registry import (
    MODEL_KEYS,
    ModelRegistry,
    ScaleSnapshot,
    Snapshot,
)
from repro.summary.store import SummaryStore

#: Endpoints whose responses are pure functions of (URL, snapshot,
#: summary version) and therefore safe to serve from the LRU cache.
CACHEABLE = {"GET /v1/population", "GET /v1/flows"}

#: Hard ceiling on request bodies (bytes) unless configured lower.
DEFAULT_MAX_BODY_BYTES = 1 << 20

#: Largest accepted ``pairs`` list in one predict request.
MAX_PREDICT_PAIRS = 10_000

#: Largest accepted ``tweets`` list in one ingest batch.
MAX_INGEST_TWEETS = 50_000


class ApiError(Exception):
    """An error with a deliberate HTTP status and client-safe message."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


def _error_payload(status: int, message: str) -> dict:
    return {"error": {"code": status, "message": message}}


class EstimationApp:
    """Routing and endpoint logic, independent of the HTTP transport."""

    def __init__(
        self,
        registry: ModelRegistry,
        ingest: IngestService,
        metrics: MetricsRegistry | None = None,
        cache_capacity: int = 256,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        profile_requests: bool = False,
        summary: SummaryStore | None = None,
        summary_scale: Scale = Scale.NATIONAL,
    ) -> None:
        self.registry = registry
        self.ingest = ingest
        self.summary = summary
        self.summary_scale = summary_scale
        #: Cluster hook (duck-typed; see repro.cluster.router.ShardRouter).
        #: The cluster layer assigns it after construction — ``serve``
        #: never imports ``cluster``, keeping the layer DAG acyclic.
        self.shard_router = None
        #: Extra tuple folded into response-cache keys; cluster workers
        #: set ``(shard_index, n_shards)`` so shards sharing one store
        #: cannot replay each other's cached answers.
        self.cache_shard_key: tuple = ()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.cache = LRUCache(cache_capacity)
        self.max_body_bytes = max_body_bytes
        self.profile_requests = profile_requests
        self._profile_reports: deque[dict] = deque(maxlen=16)
        self.started_at = time.time()  # repro: allow[determinism] uptime base
        self._routes: dict[tuple[str, str], Callable] = {
            ("GET", "/healthz"): self._handle_healthz,
            ("GET", "/metrics"): self._handle_metrics,
            ("GET", "/v1/population"): self._handle_population,
            ("GET", "/v1/flows"): self._handle_flows,
            ("POST", "/v1/predict"): self._handle_predict,
            ("POST", "/v1/ingest"): self._handle_ingest,
            ("GET", "/v1/anomalies"): self._handle_anomalies,
            ("POST", "/v1/reload"): self._handle_reload,
        }

    # -- dispatch ------------------------------------------------------

    def route_label(self, method: str, path: str) -> str:
        """The metrics label for a request (known routes only)."""
        if (method, path) in self._routes:
            return f"{method} {path}"
        return "unmatched"

    def handle(
        self,
        method: str,
        path: str,
        query: dict,
        body: dict | None,
        request_id: str = "",
    ) -> tuple[int, dict, bool]:
        """Dispatch one request; returns ``(status, payload, cache_hit)``.

        Never raises: every failure is rendered as a JSON error payload
        with the appropriate status code.  When a tracer is installed the
        whole dispatch runs inside a ``serve.request`` span carrying the
        request_id, so slow requests show up in the trace with their
        correlation id attached.
        """
        with obs.span(
            "serve.request", method=method, path=path, request_id=request_id
        ) as sp:
            status, payload, cache_hit = self._handle_inner(
                method, path, query, body
            )
            sp.set(status=status, cached=cache_hit)
        obs.counter("serve.requests")
        return status, payload, cache_hit

    def _handle_inner(
        self, method: str, path: str, query: dict, body: dict | None
    ) -> tuple[int, dict, bool]:
        handler = self._routes.get((method, path))
        if handler is None:
            if any(p == path for (_m, p) in self._routes):
                allowed = sorted(m for (m, p) in self._routes if p == path)
                return (
                    405,
                    _error_payload(405, f"method {method} not allowed; use {allowed}"),
                    False,
                )
            return 404, _error_payload(404, f"no such endpoint: {path}"), False

        # Serving endpoints see new pipeline runs promptly: a throttled
        # reload check runs ahead of any snapshot read.
        if path.startswith("/v1/") and path != "/v1/reload":
            if self.registry.maybe_reload():
                self.metrics.count_reload()

        label = f"{method} {path}"
        cache_key = None
        if label in CACHEABLE and self._cacheable(query):
            try:
                run_id = self.registry.snapshot.run_id
            except Exception as exc:
                return 503, _error_payload(503, str(exc)), False
            # The summary version makes the key monotone under ingest:
            # a windowed answer cached before a push can never be
            # replayed after it (the version bumped, so the key moved).
            cache_key = (
                path,
                tuple(sorted(query.items())),
                run_id,
                self._summary_version(),
                self.cache_shard_key,
            )
            cached = self.cache.get(cache_key)
            if cached is not None:
                status, payload = cached
                return status, payload, True

        try:
            if self.profile_requests:
                with obs.profiled(label, top_n=10) as prof:
                    status, payload = handler(query, body)
                self._profile_reports.append(prof.report.to_dict())
            else:
                status, payload = handler(query, body)
        except ApiError as exc:
            return exc.status, _error_payload(exc.status, exc.message), False
        except Exception as exc:  # defensive: never leak a traceback
            return 500, _error_payload(500, f"internal error: {exc!r}"), False
        if cache_key is not None and status == 200:
            self.cache.put(cache_key, (status, payload))
        return status, payload, False

    # -- helpers -------------------------------------------------------

    def _resolve_scale(self, query: dict) -> tuple[Snapshot, ScaleSnapshot]:
        """Resolve the snapshot *once* and the scale a request addresses.

        Handlers must derive every response field (run_id, corpus digest,
        scale data) from the returned pair — never re-read
        ``self.registry.snapshot``, which a concurrent hot-reload may
        have swapped between the two reads.
        """
        try:
            snapshot = self.registry.snapshot
        except Exception as exc:
            raise ApiError(503, str(exc)) from exc
        name = query.get("scale", Scale.NATIONAL.value)
        scale = snapshot.scale(name)
        if scale is None:
            known = [s.value for s in Scale]
            raise ApiError(400, f"unknown scale {name!r}; expected one of {known}")
        return snapshot, scale

    @staticmethod
    def _require_body(body: dict | None) -> dict:
        if body is None:
            raise ApiError(400, "request body must be a JSON object")
        return body

    def _summary_version(self) -> int:
        """The summary store's monotonic version (-1 when summaries are off)."""
        return self.summary.version if self.summary is not None else -1

    def _cacheable(self, query: dict) -> bool:
        """Whether this request's answer may be served from the LRU.

        A gathered (cluster-wide) windowed answer depends on every
        shard's summary version; the local cache key cannot see peers,
        so those bypass the cache.  Per-shard (``forwarded=1``) answers
        and every single-process answer cache normally.
        """
        if self.shard_router is None:
            return True
        return "window" not in query or query.get("forwarded") == "1"

    def _shard_routed(self, query: dict) -> bool:
        """Whether the shard router should take this request.

        False for ``forwarded=1`` requests — they were already routed
        by a peer (or by this worker's own gather) and must be answered
        locally, which is what makes forwarding loop-free.
        """
        return self.shard_router is not None and query.get("forwarded") != "1"

    def drain(self) -> dict:
        """Flush state that must survive a shutdown; idempotent.

        Persists every open summary minute bucket through the artifact
        store (so a SIGTERM mid-ingest loses nothing) and clears the
        response cache (a reused app must not serve pre-drain answers).
        Called by :meth:`EstimationServer.server_close` after in-flight
        requests finish.
        """
        flushed = 0
        if self.summary is not None:
            flushed = self.summary.flush()
        self.cache.clear()
        obs.counter("serve.drains")
        return {"summary_tiles_flushed": flushed}

    @staticmethod
    def _parse_window(query: dict) -> tuple[float, float] | None:
        """The ``window=t0:t1`` bounds, or ``None`` when unwindowed."""
        raw = query.get("window")
        if raw is None:
            return None
        head, sep, tail = raw.partition(":")
        if not sep:
            raise ApiError(
                400, f"window must be 't0:t1' in Unix seconds, got {raw!r}"
            )
        try:
            return float(head), float(tail)
        except ValueError:
            raise ApiError(
                400, f"window bounds must be numbers, got {raw!r}"
            ) from None

    def _query_summary(self, query: dict, window: tuple[float, float]):
        """Resolve a windowed query against the summary store, or error.

        503 when no summary store is wired; 400 when the requested scale
        is not the one the store summarises (tiles exist per scale) or
        the window bounds are invalid.
        """
        if self.summary is None:
            raise ApiError(
                503, "windowed queries need a summary store; none is configured"
            )
        name = query.get("scale", self.summary_scale.value)
        if name != self.summary_scale.value:
            raise ApiError(
                400,
                f"windowed queries are summarised at scale "
                f"{self.summary_scale.value!r} only, got {name!r}",
            )
        try:
            return self.summary.query(*window)
        except ValueError as exc:
            raise ApiError(400, str(exc)) from exc

    # -- endpoints -----------------------------------------------------

    def _handle_healthz(self, query: dict, body: dict | None) -> tuple[int, dict]:
        try:
            snapshot = self.registry.snapshot
        except Exception as exc:
            return 503, _error_payload(503, str(exc))
        payload = {
            "status": "ok",
            "run_id": snapshot.run_id,
            "corpus_digest": snapshot.corpus_digest,
            "corpus_tweets": snapshot.n_tweets,
            "corpus_users": snapshot.n_users,
            "uptime_seconds": round(time.time() - self.started_at, 3),  # repro: allow[determinism] uptime report
        }
        if self.summary is not None:
            stats = self.summary.stats()
            payload["summary"] = {
                "version": stats["version"],
                "watermark": stats["watermark"],
                "tiles": stats["tiles"],
                "open_minutes": stats["open_minutes"],
            }
        return 200, payload

    def _handle_metrics(self, query: dict, body: dict | None) -> tuple[int, dict]:
        payload = self.metrics.snapshot()
        payload["response_cache"] = {
            "size": len(self.cache),
            "hits": self.cache.hits,
            "misses": self.cache.misses,
        }
        payload["ingest"] = self.ingest.stats()
        if self.summary is not None:
            payload["summary"] = self.summary.stats()
        if self.profile_requests:
            payload["request_profiles"] = list(self._profile_reports)
        return 200, payload

    def _handle_population(self, query: dict, body: dict | None) -> tuple[int, dict]:
        window = self._parse_window(query)
        if window is not None:
            if self._shard_routed(query):
                return self.shard_router.gather_population(query)
            result = self._query_summary(query, window)
            world = self.summary.world
            return 200, {
                "scale": self.summary_scale.value,
                "radius_km": world.radius_km,
                "source": "summary",
                "window": {"t0": result.t0, "t1": result.t1},
                "staleness_seconds": result.staleness_seconds,
                "buckets_touched": result.buckets_touched,
                "tiles_used": result.tiles_used,
                "summary_version": result.version,
                "areas": [
                    {
                        "name": world.names[i],
                        "census_population": float(world.populations[i]),
                        "twitter_population": int(result.user_counts[i]),
                        "tweets": int(result.tweet_counts[i]),
                    }
                    for i in range(world.n_areas)
                ],
            }
        snapshot, scale = self._resolve_scale(query)
        areas = [
            {
                "name": observation.area.name,
                "census_population": observation.census_population,
                "twitter_population": observation.n_users,
                "tweets": observation.n_tweets,
            }
            for observation in scale.observations
        ]
        return 200, {
            "scale": scale.scale.value,
            "radius_km": scale.radius_km,
            "run_id": snapshot.run_id,
            "areas": areas,
        }

    def _handle_flows(self, query: dict, body: dict | None) -> tuple[int, dict]:
        window = self._parse_window(query)
        if window is not None:
            if self._shard_routed(query):
                return self.shard_router.gather_flows(query)
            result = self._query_summary(query, window)
            world = self.summary.world
            matrix = result.flow_matrix
            rows: range | list = range(world.n_areas)
            cols: range | list = range(world.n_areas)
            origin = query.get("origin")
            dest = query.get("dest")
            if origin is not None:
                index = world.area_index(origin)
                if index < 0:
                    raise ApiError(400, f"unknown origin area {origin!r}")
                rows = [index]
            if dest is not None:
                index = world.area_index(dest)
                if index < 0:
                    raise ApiError(400, f"unknown dest area {dest!r}")
                cols = [index]
            distance = world.distance_matrix_km
            return 200, {
                "scale": self.summary_scale.value,
                "source": "summary",
                "window": {"t0": result.t0, "t1": result.t1},
                "staleness_seconds": result.staleness_seconds,
                "buckets_touched": result.buckets_touched,
                "tiles_used": result.tiles_used,
                "summary_version": result.version,
                "total_trips": result.n_transitions,
                "flows": [
                    {
                        "origin": world.names[i],
                        "dest": world.names[j],
                        "flow": int(matrix[i, j]),
                        "distance_km": round(float(distance[i, j]), 3),
                    }
                    for i in rows
                    for j in cols
                    if i != j and matrix[i, j] > 0
                ],
            }
        snapshot, scale = self._resolve_scale(query)
        matrix = scale.flows.matrix
        origin = query.get("origin")
        dest = query.get("dest")
        rows = range(len(scale.areas))
        cols = range(len(scale.areas))
        if origin is not None:
            index = scale.area_index(origin)
            if index < 0:
                raise ApiError(400, f"unknown origin area {origin!r}")
            rows = [index]
        if dest is not None:
            index = scale.area_index(dest)
            if index < 0:
                raise ApiError(400, f"unknown dest area {dest!r}")
            cols = [index]
        flows = [
            {
                "origin": scale.areas[i].name,
                "dest": scale.areas[j].name,
                "flow": int(matrix[i, j]),
                "distance_km": round(float(scale.distance_km[i, j]), 3),
            }
            for i in rows
            for j in cols
            if i != j and matrix[i, j] > 0
        ]
        return 200, {
            "scale": scale.scale.value,
            "run_id": snapshot.run_id,
            "total_trips": scale.flows.total_trips,
            "flows": flows,
        }

    def _handle_predict(self, query: dict, body: dict | None) -> tuple[int, dict]:
        body = self._require_body(body)
        snapshot, scale = self._resolve_scale(
            {"scale": body.get("scale", Scale.NATIONAL.value)}
        )
        model_key = body.get("model", "gravity2")
        if model_key not in MODEL_KEYS:
            raise ApiError(400, f"unknown model {model_key!r}; expected {list(MODEL_KEYS)}")
        if model_key not in scale.models:
            raise ApiError(
                503,
                f"model {model_key!r} is not fitted at scale "
                f"{scale.scale.value!r} (too few positive flows in this run)",
            )
        raw_pairs = body.get("pairs")
        if not isinstance(raw_pairs, list) or not raw_pairs:
            raise ApiError(400, "body must carry a non-empty 'pairs' list")
        if len(raw_pairs) > MAX_PREDICT_PAIRS:
            raise ApiError(
                413, f"at most {MAX_PREDICT_PAIRS} pairs per request, got {len(raw_pairs)}"
            )
        sources = np.empty(len(raw_pairs), dtype=np.intp)
        dests = np.empty(len(raw_pairs), dtype=np.intp)
        for position, pair in enumerate(raw_pairs):
            if not isinstance(pair, dict) or "origin" not in pair or "dest" not in pair:
                raise ApiError(
                    400, f"pairs[{position}] must be an object with 'origin' and 'dest'"
                )
            i = scale.area_index(str(pair["origin"]))
            if i < 0:
                raise ApiError(400, f"pairs[{position}]: unknown origin {pair['origin']!r}")
            j = scale.area_index(str(pair["dest"]))
            if j < 0:
                raise ApiError(400, f"pairs[{position}]: unknown dest {pair['dest']!r}")
            if i == j:
                raise ApiError(400, f"pairs[{position}]: origin and dest must differ")
            sources[position] = i
            dests[position] = j
        predicted = scale.predict_pairs(model_key, sources, dests)
        obs.counter("serve.predictions", len(raw_pairs))
        return 200, {
            "scale": scale.scale.value,
            "model": model_key,
            "run_id": snapshot.run_id,
            "corpus_digest": snapshot.corpus_digest,
            "predictions": [
                {
                    "origin": scale.areas[int(i)].name,
                    "dest": scale.areas[int(j)].name,
                    "flow": round(float(value), 6),
                }
                for i, j, value in zip(sources, dests, predicted)
            ],
        }

    def _handle_ingest(self, query: dict, body: dict | None) -> tuple[int, dict]:
        body = self._require_body(body)
        raw = body.get("tweets")
        if not isinstance(raw, list) or not raw:
            raise ApiError(400, "body must carry a non-empty 'tweets' list")
        if len(raw) > MAX_INGEST_TWEETS:
            raise ApiError(
                413, f"at most {MAX_INGEST_TWEETS} tweets per batch, got {len(raw)}"
            )
        tweets = []
        for position, record in enumerate(raw):
            try:
                tweets.append(IngestService.parse_tweet(record))
            except SchemaError as exc:
                raise ApiError(400, f"tweets[{position}]: {exc}") from exc
        if self._shard_routed(query):
            return self.shard_router.route_ingest(tweets)
        return 200, self.ingest_apply(tweets)

    def ingest_apply(self, tweets: list) -> dict:
        """Apply a parsed tweet batch to this process's own state.

        The post-routing half of ingest: the monitor plus (when wired)
        the summary store's minute tiles.  The shard router calls this
        directly for the locally-owned slice of a split batch.
        """
        result = self.ingest.ingest(tweets)
        payload = {
            "accepted": result.accepted,
            "dropped_stale": result.dropped_stale,
            "anomalies_raised": result.anomalies_raised,
        }
        if self.summary is not None:
            outcome = self.summary.ingest(tweets)
            payload["summary"] = {
                "accepted": outcome.accepted,
                "dropped_late": outcome.dropped_late,
                "version": outcome.version,
            }
        return payload

    def _handle_anomalies(self, query: dict, body: dict | None) -> tuple[int, dict]:
        if query.get("check") in ("1", "true"):
            self.ingest.check_now()
        anomalies = self.ingest.anomalies()
        return 200, {
            "count": len(anomalies),
            "anomalies": [
                {
                    "source": a.source,
                    "dest": a.dest,
                    "observed": a.observed,
                    "baseline": round(a.baseline, 3),
                    "ratio": round(a.ratio, 3),
                    "timestamp": a.timestamp,
                }
                for a in anomalies
            ],
            "stats": self.ingest.stats(),
        }

    def _handle_reload(self, query: dict, body: dict | None) -> tuple[int, dict]:
        reloaded = self.registry.maybe_reload(force=True)
        if reloaded:
            self.metrics.count_reload()
        try:
            run_id = self.registry.snapshot.run_id
        except Exception as exc:
            return 503, _error_payload(503, str(exc))
        return 200, {"reloaded": reloaded, "run_id": run_id}


class RequestHandler(BaseHTTPRequestHandler):
    """JSON-over-HTTP adapter for :class:`EstimationApp`."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"
    #: Socket read timeout per request — a stalled client cannot pin a
    #: handler thread forever.
    timeout = 30.0

    @property
    def app(self) -> EstimationApp:
        return self.server.app  # type: ignore[attr-defined]

    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        started = time.perf_counter()
        request_id = self.headers.get("X-Request-Id") or uuid.uuid4().hex[:16]
        split = urlsplit(self.path)
        path = split.path.rstrip("/") or "/"
        query = dict(parse_qsl(split.query))
        try:
            body = self._read_json_body(method)
        except ApiError as exc:
            # The body may be partly unread — drop the connection rather
            # than letting keep-alive resynchronise on request bytes.
            self.close_connection = True
            self._finish(
                method, path, exc.status, _error_payload(exc.status, exc.message),
                started, cached=False, request_id=request_id,
            )
            return
        status, payload, cached = self.app.handle(
            method, path, query, body, request_id=request_id
        )
        self._finish(
            method, path, status, payload, started, cached=cached,
            request_id=request_id,
        )

    def _read_json_body(self, method: str) -> dict | None:
        if method != "POST":
            return None
        raw_length = self.headers.get("Content-Length")
        if raw_length is None:
            raise ApiError(411, "POST requires a Content-Length header")
        try:
            length = int(raw_length)
        except ValueError:
            raise ApiError(400, f"invalid Content-Length {raw_length!r}") from None
        if length < 0:
            raise ApiError(400, f"invalid Content-Length {raw_length!r}")
        if length > self.app.max_body_bytes:
            raise ApiError(
                413,
                f"body of {length} bytes exceeds the "
                f"{self.app.max_body_bytes}-byte limit",
            )
        try:
            data = self.rfile.read(length)
        except (TimeoutError, OSError) as exc:
            raise ApiError(408, f"timed out reading request body: {exc}") from exc
        try:
            parsed = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ApiError(400, f"malformed JSON body: {exc}") from exc
        if not isinstance(parsed, dict):
            raise ApiError(400, "JSON body must be an object")
        return parsed

    def _finish(
        self,
        method: str,
        path: str,
        status: int,
        payload: dict,
        started: float,
        cached: bool,
        request_id: str = "",
    ) -> None:
        data = json.dumps(payload).encode("utf-8")
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(data)))
            if request_id:
                self.send_header("X-Request-Id", request_id)
            if 300 <= status < 400:
                location = (payload.get("redirect") or {}).get("location")
                if location:
                    self.send_header("Location", location)
            self.end_headers()
            self.wfile.write(data)
        except (BrokenPipeError, ConnectionResetError):  # repro: allow[hygiene] client went away
            pass  # still account for the request below
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        self.app.metrics.observe(
            self.app.route_label(method, path), status, elapsed_ms,
            cached=cached, request_id=request_id,
        )
        self._access_log(method, path, status, elapsed_ms, cached, request_id)

    def _access_log(
        self,
        method: str,
        path: str,
        status: int,
        ms: float,
        cached: bool,
        request_id: str,
    ) -> None:
        logger = getattr(self.server, "access_logger", None)  # type: ignore[attr-defined]
        if logger is not None:
            logger.info(
                "request",
                request_id=request_id,
                method=method,
                path=path,
                status=status,
                ms=round(ms, 3),
                cached=cached,
                client=self.client_address[0],
            )

    def log_message(self, format: str, *args) -> None:
        """Silence http.server's default stderr lines (we emit JSON)."""


class EstimationServer(ThreadingHTTPServer):
    """Threaded HTTP server that drains in-flight requests on close."""

    #: Handler threads are joined by ``server_close`` — graceful drain.
    daemon_threads = False
    block_on_close = True
    allow_reuse_address = True

    def __init__(
        self,
        address: tuple[str, int],
        app: EstimationApp,
        access_log_file=None,
        sock: socket_module.socket | None = None,
        flush_on_drain: bool = True,
    ):
        if sock is None:
            super().__init__(address, RequestHandler)
        else:
            # Pre-fork adoption: the supervisor already bound and
            # listened on this socket; every worker just accept()s on
            # the inherited fd.  Skip bind_and_activate and graft the
            # socket in, mirroring what server_bind/server_activate
            # would have recorded.
            super().__init__(address, RequestHandler, bind_and_activate=False)
            self.socket.close()
            self.socket = sock
            host, port = sock.getsockname()[:2]
            self.server_address = (host, port)
            self.server_name = socket_module.getfqdn(host)
            self.server_port = port
        self.app = app
        self.flush_on_drain = flush_on_drain
        self.access_log_file = access_log_file
        self.access_logger = (
            obs.StructuredLogger("repro.serve.access", stream=access_log_file)
            if access_log_file is not None
            else None
        )

    @property
    def port(self) -> int:
        """The bound port (useful with ephemeral port 0)."""
        return self.server_address[1]

    def server_close(self) -> None:
        """Drain in-flight requests, then flush app state (once).

        The base class joins the non-daemon handler threads
        (``block_on_close``), so by the time :meth:`EstimationApp.drain`
        runs no request is mid-flight: the flushed summary tiles are a
        consistent cut.  ``flush_on_drain=False`` opts out for servers
        that share an app whose lifecycle someone else owns (a cluster
        worker drains once, explicitly, after closing both listeners).
        """
        super().server_close()
        if self.flush_on_drain:
            self.app.drain()
            self.flush_on_drain = False


def create_app(
    store: ArtifactStore,
    monitor_scale: Scale = Scale.NATIONAL,
    window_seconds: float = 3600.0,
    poll_interval: float = 2.0,
    cache_capacity: int = 256,
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
    preload: bool = True,
    profile_requests: bool = False,
    with_summary: bool = True,
    summary_namespace: str | None = None,
    gazetteer: str | None = None,
) -> EstimationApp:
    """Wire registry + ingest + metrics into an app over one store.

    With ``preload`` (the default) the initial snapshot is built before
    the first request, so a misconfigured cache dir fails fast at boot.
    With ``with_summary`` (the default) a :class:`SummaryStore` over the
    monitor scale is attached, persisted through the same artifact
    store, and its tiles recovered — so windowed queries survive a
    restart without corpus replay.  ``summary_namespace`` overrides the
    store's tile namespace (cluster workers use
    ``"<scale>-s<shard>of<n>"`` so shards persist disjoint tile sets
    through one artifact store).  ``gazetteer`` picks the monitored area
    system (``legacy`` or ``synth:<areas>[@<seed>]``); non-legacy
    gazetteers qualify the default summary namespace with the gazetteer
    slug so tiles from different area systems never collide.
    """
    registry = ModelRegistry(store, poll_interval=poll_interval)
    if preload:
        registry.load()
    resolved = gazetteer_from_spec(gazetteer)
    ingest = IngestService(
        resolved.areas_for_scale(monitor_scale),
        radius_km=resolved.search_radius_km(monitor_scale),
        window_seconds=window_seconds,
    )
    summary = None
    if with_summary:
        if resolved.is_legacy:
            default_namespace = monitor_scale.value
            summary_world = World.from_scale(monitor_scale)
        else:
            default_namespace = f"{resolved.namespace_slug}-{monitor_scale.value}"
            summary_world = World.from_scale(monitor_scale, gazetteer=resolved)
        summary = SummaryStore(
            summary_world,
            artifacts=store,
            namespace=summary_namespace or default_namespace,
        )
        summary.recover()
    return EstimationApp(
        registry,
        ingest,
        cache_capacity=cache_capacity,
        max_body_bytes=max_body_bytes,
        profile_requests=profile_requests,
        summary=summary,
        summary_scale=monitor_scale,
    )


def create_server(
    host: str,
    port: int,
    app: EstimationApp,
    access_log_file=sys.stderr,
    sock: socket_module.socket | None = None,
    flush_on_drain: bool = True,
) -> EstimationServer:
    """Bind the service (``port=0`` picks an ephemeral port).

    Pass ``sock`` to adopt an already-listening socket instead of
    binding (the pre-fork path); ``host``/``port`` are then ignored.
    """
    return EstimationServer(
        (host, port),
        app,
        access_log_file=access_log_file,
        sock=sock,
        flush_on_drain=flush_on_drain,
    )


def install_signal_handlers(server: EstimationServer) -> None:
    """Arrange graceful shutdown on SIGTERM/SIGINT.

    ``shutdown`` must not run on the thread inside ``serve_forever``,
    so the handler hands it to a short-lived helper thread; the main
    thread then falls out of ``serve_forever`` and drains via
    ``server_close``.
    """

    def _handle(signum, frame):  # pragma: no cover - exercised via CLI
        threading.Thread(target=server.shutdown, daemon=True).start()

    signal.signal(signal.SIGTERM, _handle)
    signal.signal(signal.SIGINT, _handle)
