"""Request metrics: per-endpoint counters and latency histograms.

The estimation service records every handled request into a
:class:`MetricsRegistry` — one :class:`EndpointMetrics` per route label
(e.g. ``GET /v1/population``).  Latencies accumulate into fixed
log-spaced millisecond buckets, from which p50/p95/p99 are interpolated;
the exposed snapshot is what ``GET /metrics`` serialises.

Request correlation: every observation carries the request's
``request_id`` (the same id the structured access log emits), and the
registry keeps two bounded ring buffers — the most recent requests and
the slowest-threshold offenders — so an id seen in the log can be found
in ``/metrics`` too.  The snapshot also folds in the process-global
:mod:`repro.obs` counters, putting pipeline/extraction/model counters
behind the same endpoint as the HTTP histograms.

Everything is guarded by one registry-wide lock: observations are a few
integer increments, so contention is negligible next to request I/O.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro import obs

#: Upper edges (milliseconds) of the latency histogram buckets.  The
#: final implicit bucket is +inf.
LATENCY_BUCKETS_MS: tuple[float, ...] = (
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0,
)


def quantile_from_buckets(
    counts: list[int], edges: tuple[float, ...], q: float
) -> float:
    """Interpolated quantile (ms) from cumulative histogram counts.

    ``counts`` has ``len(edges) + 1`` entries (the last is the overflow
    bucket).  Linear interpolation within the bucket containing the
    target rank; the overflow bucket reports its lower edge.
    """
    total = sum(counts)
    if total == 0:
        return 0.0
    rank = q * total
    seen = 0.0
    for index, count in enumerate(counts):
        if count == 0:
            continue
        if seen + count >= rank:
            lower = edges[index - 1] if index > 0 else 0.0
            if index >= len(edges):  # overflow bucket: no upper edge
                return lower
            upper = edges[index]
            fraction = (rank - seen) / count
            return lower + fraction * (upper - lower)
        seen += count
    return edges[-1]


@dataclass
class EndpointMetrics:
    """Counters and a latency histogram for one route."""

    requests: int = 0
    errors_4xx: int = 0
    errors_5xx: int = 0
    cache_hits: int = 0
    total_ms: float = 0.0
    max_ms: float = 0.0
    bucket_counts: list[int] = field(
        default_factory=lambda: [0] * (len(LATENCY_BUCKETS_MS) + 1)
    )

    def observe(self, status: int, ms: float, cached: bool = False) -> None:
        """Record one handled request."""
        self.requests += 1
        if 400 <= status < 500:
            self.errors_4xx += 1
        elif status >= 500:
            self.errors_5xx += 1
        if cached:
            self.cache_hits += 1
        self.total_ms += ms
        self.max_ms = max(self.max_ms, ms)
        for index, edge in enumerate(LATENCY_BUCKETS_MS):
            if ms <= edge:
                self.bucket_counts[index] += 1
                break
        else:
            self.bucket_counts[-1] += 1

    def snapshot(self) -> dict:
        """Plain-data form for the ``/metrics`` endpoint."""
        mean = self.total_ms / self.requests if self.requests else 0.0
        return {
            "requests": self.requests,
            "errors_4xx": self.errors_4xx,
            "errors_5xx": self.errors_5xx,
            "cache_hits": self.cache_hits,
            "latency_ms": {
                "mean": round(mean, 3),
                "max": round(self.max_ms, 3),
                "p50": round(
                    quantile_from_buckets(self.bucket_counts, LATENCY_BUCKETS_MS, 0.50), 3
                ),
                "p95": round(
                    quantile_from_buckets(self.bucket_counts, LATENCY_BUCKETS_MS, 0.95), 3
                ),
                "p99": round(
                    quantile_from_buckets(self.bucket_counts, LATENCY_BUCKETS_MS, 0.99), 3
                ),
            },
        }


class MetricsRegistry:
    """Thread-safe collection of per-endpoint metrics.

    ``slow_ms`` is the latency threshold above which a request is kept
    in the ``slow_requests`` ring buffer (with its request_id) for
    after-the-fact inspection via ``/metrics``.
    """

    def __init__(
        self,
        slow_ms: float = 100.0,
        recent_capacity: int = 64,
        slow_capacity: int = 64,
    ) -> None:
        self._lock = threading.Lock()
        self._endpoints: dict[str, EndpointMetrics] = {}
        self.reloads = 0
        self.slow_ms = float(slow_ms)
        self._recent: deque[dict] = deque(maxlen=recent_capacity)
        self._slow: deque[dict] = deque(maxlen=slow_capacity)

    def observe(
        self,
        endpoint: str,
        status: int,
        ms: float,
        cached: bool = False,
        request_id: str = "",
    ) -> None:
        """Record one request against its route label."""
        entry = {
            "request_id": request_id,
            "endpoint": endpoint,
            "status": status,
            "ms": round(ms, 3),
            "cached": cached,
            "ts": round(time.time(), 3),  # repro: allow[determinism] request timestamp
        }
        with self._lock:
            metrics = self._endpoints.setdefault(endpoint, EndpointMetrics())
            metrics.observe(status, ms, cached=cached)
            self._recent.append(entry)
            if ms >= self.slow_ms:
                self._slow.append(entry)

    def count_reload(self) -> None:
        """Record one registry hot-reload."""
        with self._lock:
            self.reloads += 1

    def snapshot(self) -> dict:
        """All endpoints' metrics plus service-level and obs counters."""
        with self._lock:
            return {
                "reloads": self.reloads,
                "endpoints": {
                    name: metrics.snapshot()
                    for name, metrics in sorted(self._endpoints.items())
                },
                "recent_requests": list(self._recent),
                "slow_requests": {
                    "threshold_ms": self.slow_ms,
                    "requests": list(self._slow),
                },
                "counters": obs.counters_snapshot(),
            }
