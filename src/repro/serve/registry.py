"""Artifact-backed model registry with hot-reload.

The registry is the bridge between the offline pipeline and the online
service: it resolves the **latest successful run** recorded in an
:class:`~repro.pipeline.store.ArtifactStore`, loads that run's corpus
artifact, and derives everything the endpoints serve — per-scale area
observations, OD flows and fitted mobility models — into one immutable
:class:`Snapshot`.

Hot-reload semantics
--------------------
``maybe_reload`` polls the store's ``runs/`` directory (rate-limited by
``poll_interval`` seconds) for a successful run newer than the current
snapshot's.  Loading happens *outside* the reader path: request threads
keep serving the old snapshot until the new one is fully built, then a
single attribute assignment swaps it in (atomic under the GIL).  A lock
serialises concurrent reload attempts; readers never block.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.core.world import World
from repro.data.gazetteer import Area, Scale
from repro.experiments.scales import ExperimentContext
from repro.extraction.mobility import ODFlows, ODPairs
from repro.extraction.population import AreaObservation
from repro.models.base import FittedMobilityModel, ModelFitError
from repro.models.gravity import GravityModel
from repro.models.radiation import RadiationModel
from repro.pipeline.store import ArtifactStore

#: Model keys accepted by the predict endpoint, in display order.
MODEL_KEYS = ("gravity2", "gravity4", "radiation")


class RegistryError(RuntimeError):
    """Raised when no servable pipeline run can be resolved."""


@dataclass(frozen=True)
class ScaleSnapshot:
    """Everything served for one geographic scale.

    The area system itself is the snapshot's :class:`World`; areas,
    radius and the centre distance matrix are views onto it, so the
    serving layer shares the exact geometry the extraction ran with.
    """

    scale: Scale
    world: World
    observations: tuple[AreaObservation, ...]
    flows: ODFlows
    models: Mapping[str, FittedMobilityModel]

    @property
    def areas(self) -> tuple[Area, ...]:
        """The scale's study areas (from the world)."""
        return self.world.areas

    @property
    def radius_km(self) -> float:
        """The search radius ε the snapshot was extracted at."""
        return self.world.radius_km

    @property
    def distance_km(self) -> np.ndarray:
        """Pairwise centre distances (the world's cached matrix)."""
        return self.world.distance_matrix_km

    def area_index(self, name: str) -> int:
        """Index of an area by (case-insensitive) name; -1 if unknown."""
        return self.world.area_index(name)

    def predict_pairs(self, model_key: str, sources: np.ndarray, dests: np.ndarray) -> np.ndarray:
        """Vectorised flow predictions for index pairs (one model call)."""
        model = self.models.get(model_key)
        if model is None:
            raise KeyError(model_key)
        populations = self.flows.populations()
        pairs = ODPairs(
            source=sources,
            dest=dests,
            m=populations[sources],
            n=populations[dests],
            d_km=self.distance_km[sources, dests],
            flow=np.zeros(sources.size, dtype=np.float64),
        )
        return model.predict(pairs)


@dataclass(frozen=True)
class Snapshot:
    """One immutable serving state, derived from one pipeline run."""

    run_id: str
    corpus_digest: str
    n_tweets: int
    n_users: int
    loaded_at: float
    scales: Mapping[Scale, ScaleSnapshot]

    def scale(self, name: str) -> ScaleSnapshot | None:
        """A scale snapshot by its lowercase name, or ``None``."""
        try:
            return self.scales.get(Scale(name.lower()))
        except ValueError:
            return None


def build_snapshot(store: ArtifactStore, manifest) -> Snapshot:
    """Derive a full serving snapshot from one run's corpus artifact.

    Models that cannot be fitted on the run's flows (too few positive
    pairs at a scale) are simply absent from that scale's ``models``
    map; the predict endpoint reports them as unavailable rather than
    failing the whole snapshot.
    """
    corpus_digest = manifest.digest_of("corpus")
    if corpus_digest is None:
        raise RegistryError(f"run {manifest.run_id} has no corpus artifact")
    corpus = store.get(corpus_digest)
    context = ExperimentContext(corpus)
    scales: dict[Scale, ScaleSnapshot] = {}
    for spec in context.specs:
        flows = context.flows(spec.scale)
        pairs = flows.pairs()
        models: dict[str, FittedMobilityModel] = {}
        fitters = {
            "gravity2": GravityModel(2),
            "gravity4": GravityModel(4),
            "radiation": RadiationModel.from_flows(flows),
        }
        for key, fitter in fitters.items():
            try:
                models[key] = fitter.fit(pairs)
            except ModelFitError:
                continue
        scales[spec.scale] = ScaleSnapshot(
            scale=spec.scale,
            world=spec.world,
            observations=tuple(context.observations(spec.scale)),
            flows=flows,
            models=models,
        )
    return Snapshot(
        run_id=manifest.run_id,
        corpus_digest=corpus_digest,
        n_tweets=len(corpus),
        n_users=corpus.n_users,
        loaded_at=time.time(),  # repro: allow[determinism] snapshot load timestamp
        scales=scales,
    )


class ModelRegistry:
    """Resolves, holds and hot-reloads the current serving snapshot."""

    def __init__(
        self,
        store: ArtifactStore,
        poll_interval: float = 2.0,
    ) -> None:
        self.store = store
        self.poll_interval = float(poll_interval)
        self._lock = threading.Lock()
        self._snapshot: Snapshot | None = None
        self._next_poll = 0.0

    @property
    def snapshot(self) -> Snapshot:
        """The current snapshot (load on first access)."""
        snapshot = self._snapshot
        if snapshot is None:
            self.load()
            snapshot = self._snapshot
            assert snapshot is not None
        return snapshot

    def load(self) -> Snapshot:
        """Resolve the latest successful run and build its snapshot.

        Raises :class:`RegistryError` when the store has no servable
        run (never piped, or the cache was cleaned).
        """
        manifest = self.store.latest_successful_run(required=("corpus",))
        if manifest is None:
            raise RegistryError(
                f"no successful pipeline run with a servable corpus under "
                f"{self.store.root} — run `repro pipeline run` first"
            )
        with self._lock:
            current = self._snapshot
            if current is not None and current.run_id == manifest.run_id:
                return current
            snapshot = build_snapshot(self.store, manifest)
            self._snapshot = snapshot
            return snapshot

    def maybe_reload(self, force: bool = False) -> bool:
        """Swap in a newer run's snapshot if one appeared.

        Rate-limited to one directory scan per ``poll_interval`` seconds
        unless ``force`` is true.  Returns ``True`` when the snapshot
        was replaced.  Reload failures (e.g. a run deleted mid-build)
        leave the current snapshot serving and propagate nothing.
        """
        now = time.monotonic()
        if not force and now < self._next_poll:
            return False
        # repro: allow[concurrency] benign race: worst case is one extra scan
        self._next_poll = now + self.poll_interval
        current = self._snapshot
        manifest = self.store.latest_successful_run(required=("corpus",))
        if manifest is None:
            return False
        if current is not None and manifest.run_id == current.run_id:
            return False
        with self._lock:
            # Re-check under the lock: another thread may have swapped.
            current = self._snapshot
            if current is not None and manifest.run_id == current.run_id:
                return False
            try:
                snapshot = build_snapshot(self.store, manifest)
            except Exception:
                return False
            self._snapshot = snapshot
            return True
