"""HTTP estimation service over the artifact store.

The paper's closing pitch — a *responsive* population/mobility
estimation system for disease response — needs its estimates reachable
over the network, not parked in ``~/.cache/repro``.  This subpackage
serves them with nothing beyond the standard library:

``registry``
    Resolves the latest successful pipeline run from an
    :class:`~repro.pipeline.store.ArtifactStore`, derives per-scale
    populations, OD flows and fitted models into an immutable snapshot,
    and hot-reloads (atomic swap) when a newer run lands.
``app``
    The router, endpoint handlers, JSON error envelope, threaded server
    with graceful drain, and per-request access logging.
``ingest``
    Lock-guarded live tweet ingest into a windowed
    :class:`~repro.stream.monitor.MobilityMonitor` (anomaly flags).
``metrics`` / ``cache``
    Per-endpoint counters + latency histograms, and the LRU response
    cache for idempotent GETs.

Boot it with ``repro serve`` or programmatically::

    from repro.pipeline import ArtifactStore
    from repro.serve import create_app, create_server

    app = create_app(ArtifactStore())
    server = create_server("127.0.0.1", 8080, app)
    server.serve_forever()
"""

from repro.serve.app import (
    ApiError,
    EstimationApp,
    EstimationServer,
    create_app,
    create_server,
    install_signal_handlers,
)
from repro.serve.cache import LRUCache
from repro.serve.ingest import IngestResult, IngestService
from repro.serve.metrics import MetricsRegistry
from repro.serve.registry import (
    MODEL_KEYS,
    ModelRegistry,
    RegistryError,
    ScaleSnapshot,
    Snapshot,
    build_snapshot,
)

__all__ = [
    "MODEL_KEYS",
    "ApiError",
    "EstimationApp",
    "EstimationServer",
    "IngestResult",
    "IngestService",
    "LRUCache",
    "MetricsRegistry",
    "ModelRegistry",
    "RegistryError",
    "ScaleSnapshot",
    "Snapshot",
    "build_snapshot",
    "create_app",
    "create_server",
    "install_signal_handlers",
]
