"""Declarative scenario configuration.

A scenario is a plain dict (JSON-able) naming a world, a synthetic
corpus, a mobility model, an epidemic setup, an intervention stack and
the outputs to extract.  :meth:`ScenarioConfig.from_dict` validates the
whole thing up front — unknown keys, wrong types, out-of-range values
and statically-invalid intervention stacks are all rejected with
pointed messages before anything expensive runs — and the frozen result
round-trips back through :meth:`ScenarioConfig.to_dict` in canonical
form, which is what the pipeline compiler fingerprints for cache keys.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping

from repro.data.gazetteer import Scale
from repro.epidemic.interventions import (
    Intervention,
    InterventionError,
    intervention_from_dict,
    validate_stack,
)
from repro.models.registry import MODEL_KINDS
from repro.synth.config import SynthConfig


class ScenarioConfigError(ValueError):
    """A scenario config dict failed validation."""


#: Output kinds an epidemic scenario can request.
OUTPUT_KINDS = (
    "arrival_times",
    "attack_rate",
    "mean_arrival_day",
    "peak_infectious",
    "peak_times",
    "total_infected",
)

#: Output kinds a forecast scenario can request.
FORECAST_OUTPUT_KINDS = (
    "forecast_actual_arrival",
    "forecast_inferred_r0",
    "forecast_median_error_days",
    "forecast_predicted_arrival",
    "forecast_skill_p",
    "forecast_skill_r",
)

#: Defaults when a config does not name its outputs.
DEFAULT_OUTPUTS = ("arrival_times", "attack_rate", "mean_arrival_day", "total_infected")
DEFAULT_FORECAST_OUTPUTS = (
    "forecast_skill_r",
    "forecast_skill_p",
    "forecast_median_error_days",
    "forecast_inferred_r0",
)


def _require_mapping(section: str, value: object) -> dict:
    if not isinstance(value, Mapping):
        raise ScenarioConfigError(f"{section}: expected a mapping, got {type(value).__name__}")
    return dict(value)


def _reject_unknown(section: str, data: Mapping, allowed: tuple[str, ...]) -> None:
    unknown = sorted(set(data) - set(allowed))
    if unknown:
        raise ScenarioConfigError(
            f"{section}: unknown keys {', '.join(unknown)}; "
            f"expected only {', '.join(allowed)}"
        )


def _number(section: str, key: str, value: object, minimum: float | None = None) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ScenarioConfigError(f"{section}.{key}: expected a number, got {value!r}")
    number = float(value)
    if minimum is not None and not number >= minimum:
        raise ScenarioConfigError(f"{section}.{key}: must be >= {minimum}, got {value!r}")
    return number


def _integer(section: str, key: str, value: object, minimum: int | None = None) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ScenarioConfigError(f"{section}.{key}: expected an integer, got {value!r}")
    if minimum is not None and value < minimum:
        raise ScenarioConfigError(f"{section}.{key}: must be >= {minimum}, got {value!r}")
    return int(value)


def _string(section: str, key: str, value: object) -> str:
    if not isinstance(value, str) or not value:
        raise ScenarioConfigError(
            f"{section}.{key}: expected a non-empty string, got {value!r}"
        )
    return value


@dataclass(frozen=True)
class WorldSpec:
    """Which area system and scale the scenario runs on."""

    gazetteer: str = "legacy"
    scale: Scale = Scale.NATIONAL

    @classmethod
    def from_dict(cls, data: Mapping) -> "WorldSpec":
        data = _require_mapping("world", data)
        _reject_unknown("world", data, ("gazetteer", "scale"))
        gazetteer = _string("world", "gazetteer", data.get("gazetteer", "legacy"))
        raw_scale = data.get("scale", Scale.NATIONAL.value)
        try:
            scale = Scale(raw_scale)
        except ValueError:
            raise ScenarioConfigError(
                f"world.scale: unknown scale {raw_scale!r}; "
                f"expected one of {', '.join(s.value for s in Scale)}"
            ) from None
        return cls(gazetteer=gazetteer, scale=scale)

    def to_dict(self) -> dict:
        return {"gazetteer": self.gazetteer, "scale": self.scale.value}


@dataclass(frozen=True)
class CorpusSpec:
    """Synthetic corpus parameters (drives the shared ``corpus`` task)."""

    users: int = 20_000
    seed: int = 20150413

    @classmethod
    def from_dict(cls, data: Mapping) -> "CorpusSpec":
        data = _require_mapping("corpus", data)
        _reject_unknown("corpus", data, ("users", "seed"))
        return cls(
            users=_integer("corpus", "users", data.get("users", 20_000), minimum=1),
            seed=_integer("corpus", "seed", data.get("seed", 20150413)),
        )

    def to_dict(self) -> dict:
        return {"users": self.users, "seed": self.seed}


@dataclass(frozen=True)
class ModelSpec:
    """Which mobility model couples the metapopulation network."""

    kind: str = "gravity2"
    trips_per_person_per_day: float = 0.05

    @classmethod
    def from_dict(cls, data: Mapping) -> "ModelSpec":
        data = _require_mapping("model", data)
        _reject_unknown("model", data, ("kind", "trips_per_person_per_day"))
        kind = _string("model", "kind", data.get("kind", "gravity2"))
        if kind not in MODEL_KINDS:
            raise ScenarioConfigError(
                f"model.kind: unknown model {kind!r}; "
                f"expected one of {', '.join(MODEL_KINDS)}"
            )
        trips = _number(
            "model",
            "trips_per_person_per_day",
            data.get("trips_per_person_per_day", 0.05),
            minimum=0.0,
        )
        if trips <= 0:
            raise ScenarioConfigError("model.trips_per_person_per_day: must be positive")
        return cls(kind=kind, trips_per_person_per_day=trips)

    def to_dict(self) -> dict:
        return {"kind": self.kind, "trips_per_person_per_day": self.trips_per_person_per_day}


@dataclass(frozen=True)
class EpidemicSpec:
    """The outbreak: transmission parameters, seed and horizon."""

    beta: float = 0.5
    sigma: float = 0.25
    gamma: float = 0.2
    seed_city: str = "Sydney"
    initial_cases: float = 10.0
    t_max_days: float = 365.0
    dt_days: float = 0.25
    arrival_threshold: float = 10.0

    _KEYS = (
        "beta",
        "sigma",
        "gamma",
        "seed_city",
        "initial_cases",
        "t_max_days",
        "dt_days",
        "arrival_threshold",
    )

    @classmethod
    def from_dict(cls, data: Mapping) -> "EpidemicSpec":
        data = _require_mapping("epidemic", data)
        _reject_unknown("epidemic", data, cls._KEYS)
        defaults = cls()
        values = {}
        for key in ("beta", "sigma", "gamma", "initial_cases", "t_max_days", "dt_days",
                    "arrival_threshold"):
            values[key] = _number("epidemic", key, data.get(key, getattr(defaults, key)))
            if values[key] <= 0:
                raise ScenarioConfigError(f"epidemic.{key}: must be positive")
        values["seed_city"] = _string(
            "epidemic", "seed_city", data.get("seed_city", defaults.seed_city)
        )
        return cls(**values)

    def to_dict(self) -> dict:
        return {key: getattr(self, key) for key in self._KEYS}


@dataclass(frozen=True)
class ForecastSpec:
    """Optional forecast-loop mode (sense → infer → forecast → score)."""

    hidden_beta: float = 0.55
    hidden_gamma: float = 0.22
    observation_days: int = 60
    initial_cases: int = 20
    arrival_threshold: float = 20.0
    outbreak_seed: int = 42

    _KEYS = (
        "hidden_beta",
        "hidden_gamma",
        "observation_days",
        "initial_cases",
        "arrival_threshold",
        "outbreak_seed",
    )

    @classmethod
    def from_dict(cls, data: Mapping) -> "ForecastSpec":
        data = _require_mapping("forecast", data)
        _reject_unknown("forecast", data, cls._KEYS)
        defaults = cls()
        return cls(
            hidden_beta=_number(
                "forecast", "hidden_beta", data.get("hidden_beta", defaults.hidden_beta),
                minimum=1e-9,
            ),
            hidden_gamma=_number(
                "forecast", "hidden_gamma", data.get("hidden_gamma", defaults.hidden_gamma),
                minimum=1e-9,
            ),
            observation_days=_integer(
                "forecast", "observation_days",
                data.get("observation_days", defaults.observation_days), minimum=2,
            ),
            initial_cases=_integer(
                "forecast", "initial_cases",
                data.get("initial_cases", defaults.initial_cases), minimum=1,
            ),
            arrival_threshold=_number(
                "forecast", "arrival_threshold",
                data.get("arrival_threshold", defaults.arrival_threshold), minimum=1e-9,
            ),
            outbreak_seed=_integer(
                "forecast", "outbreak_seed", data.get("outbreak_seed", defaults.outbreak_seed)
            ),
        )

    def to_dict(self) -> dict:
        return {key: getattr(self, key) for key in self._KEYS}


_TOP_KEYS = (
    "name",
    "description",
    "world",
    "corpus",
    "model",
    "epidemic",
    "interventions",
    "outputs",
    "forecast",
)


@dataclass(frozen=True)
class ScenarioConfig:
    """One fully-validated scenario, ready to evaluate or compile."""

    name: str
    world: WorldSpec = WorldSpec()
    corpus: CorpusSpec = CorpusSpec()
    model: ModelSpec = ModelSpec()
    epidemic: EpidemicSpec = EpidemicSpec()
    interventions: tuple[Intervention, ...] = ()
    outputs: tuple[str, ...] = DEFAULT_OUTPUTS
    forecast: ForecastSpec | None = None
    description: str = ""

    @classmethod
    def from_dict(cls, data: Mapping) -> "ScenarioConfig":
        """Validate a plain config dict into a frozen ScenarioConfig."""
        data = _require_mapping("scenario", data)
        _reject_unknown("scenario", data, _TOP_KEYS)
        if "name" not in data:
            raise ScenarioConfigError("scenario.name: required")
        name = _string("scenario", "name", data["name"])
        description = data.get("description", "")
        if not isinstance(description, str):
            raise ScenarioConfigError("scenario.description: expected a string")

        raw_interventions = data.get("interventions", [])
        if isinstance(raw_interventions, (str, bytes)) or not hasattr(
            raw_interventions, "__iter__"
        ):
            raise ScenarioConfigError("scenario.interventions: expected a list of mappings")
        try:
            interventions = tuple(
                item if isinstance(item, Intervention) else intervention_from_dict(item)
                for item in raw_interventions
            )
            interventions = validate_stack(interventions)
        except ScenarioConfigError:
            raise
        except InterventionError as exc:
            raise ScenarioConfigError(f"scenario.interventions: {exc}") from exc

        forecast = (
            ForecastSpec.from_dict(data["forecast"])
            if data.get("forecast") is not None
            else None
        )

        raw_outputs = data.get("outputs")
        if raw_outputs is None:
            outputs = DEFAULT_FORECAST_OUTPUTS if forecast is not None else DEFAULT_OUTPUTS
        else:
            if isinstance(raw_outputs, (str, bytes)) or not hasattr(raw_outputs, "__iter__"):
                raise ScenarioConfigError("scenario.outputs: expected a list of strings")
            outputs = tuple(raw_outputs)
            allowed = FORECAST_OUTPUT_KINDS if forecast is not None else OUTPUT_KINDS
            mode = "forecast" if forecast is not None else "epidemic"
            for output in outputs:
                if output not in allowed:
                    raise ScenarioConfigError(
                        f"scenario.outputs: {output!r} is not a valid {mode}-scenario "
                        f"output; expected one of {', '.join(allowed)}"
                    )
            if not outputs:
                raise ScenarioConfigError("scenario.outputs: at least one output required")

        config = cls(
            name=name,
            world=WorldSpec.from_dict(data.get("world", {})),
            corpus=CorpusSpec.from_dict(data.get("corpus", {})),
            model=ModelSpec.from_dict(data.get("model", {})),
            epidemic=EpidemicSpec.from_dict(data.get("epidemic", {})),
            interventions=interventions,
            outputs=outputs,
            forecast=forecast,
            description=description,
        )
        if config.forecast is not None:
            bad = [i.kind for i in config.interventions if i.phase != 0]
            if bad:
                raise ScenarioConfigError(
                    "forecast scenarios support network-phase interventions only "
                    f"(the forecast loop has no immunity/seeding channel); got {', '.join(bad)}"
                )
        return config

    def to_dict(self) -> dict:
        """The canonical JSON-able form (interventions in stack order).

        This is what the compiler fingerprints: two configs that mean
        the same scenario — e.g. the same stack declared in a different
        order — serialise identically and therefore share a cache key.
        """
        return {
            "name": self.name,
            "description": self.description,
            "world": self.world.to_dict(),
            "corpus": self.corpus.to_dict(),
            "model": self.model.to_dict(),
            "epidemic": self.epidemic.to_dict(),
            "interventions": [i.spec() for i in validate_stack(self.interventions)],
            "outputs": list(self.outputs),
            "forecast": None if self.forecast is None else self.forecast.to_dict(),
        }

    def synth_config(self) -> SynthConfig:
        """The synthesis config for this scenario's corpus.

        Only users/seed/gazetteer vary by scenario; every other synth
        knob keeps its default, so scenario corpora share cache entries
        with ``repro pipeline run`` invocations at the same settings.
        """
        return SynthConfig(
            n_users=self.corpus.users,
            seed=self.corpus.seed,
            gazetteer=self.world.gazetteer,
        )

    def with_overrides(
        self,
        users: int | None = None,
        seed: int | None = None,
        gazetteer: str | None = None,
    ) -> "ScenarioConfig":
        """A copy with CLI-style corpus/world overrides applied."""
        config = self
        if users is not None or seed is not None:
            config = replace(
                config,
                corpus=CorpusSpec(
                    users=users if users is not None else config.corpus.users,
                    seed=seed if seed is not None else config.corpus.seed,
                ),
            )
        if gazetteer is not None:
            config = replace(config, world=replace(config.world, gazetteer=gazetteer))
        return config
