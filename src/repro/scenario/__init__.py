"""Declarative counterfactual scenarios on the pipeline DAG.

A *scenario* is a plain dict: which world (gazetteer + scale), which
synthetic corpus, which mobility model couples the metapopulation
network, which outbreak, which interventions, which outputs.  The
package validates the dict (:mod:`~repro.scenario.config`), evaluates
it through one shared engine (:mod:`~repro.scenario.engine`), compiles
it into content-addressed pipeline tasks so runs cache, shard and
compose (:mod:`~repro.scenario.compiler`), and ships a library of named
scenarios (:mod:`~repro.scenario.library`) that bit-match the legacy
ablation scripts they replaced.

Quickstart::

    from repro.scenario import named_scenario, run_scenario

    result, run = run_scenario(named_scenario("lockdown-hard"))
    print(result.render())
    print(run.manifest.summary())   # second invocation: all cache hits
"""

from repro.scenario.compiler import (
    SCENARIO_TASK_VERSIONS,
    comparison_pipeline,
    network_task_name,
    run_comparison,
    run_scenario,
    scenario_pipeline,
    scenario_task_name,
)
from repro.scenario.config import (
    DEFAULT_FORECAST_OUTPUTS,
    DEFAULT_OUTPUTS,
    FORECAST_OUTPUT_KINDS,
    OUTPUT_KINDS,
    CorpusSpec,
    EpidemicSpec,
    ForecastSpec,
    ModelSpec,
    ScenarioConfig,
    ScenarioConfigError,
    WorldSpec,
)
from repro.scenario.engine import build_setting, evaluate_on_network, evaluate_scenario
from repro.scenario.library import named_scenario, scenario_descriptions, scenario_names
from repro.scenario.result import ComparisonResult, ScenarioResult

__all__ = [
    "DEFAULT_FORECAST_OUTPUTS",
    "DEFAULT_OUTPUTS",
    "FORECAST_OUTPUT_KINDS",
    "OUTPUT_KINDS",
    "SCENARIO_TASK_VERSIONS",
    "ComparisonResult",
    "CorpusSpec",
    "EpidemicSpec",
    "ForecastSpec",
    "ModelSpec",
    "ScenarioConfig",
    "ScenarioConfigError",
    "ScenarioResult",
    "WorldSpec",
    "build_setting",
    "comparison_pipeline",
    "evaluate_on_network",
    "evaluate_scenario",
    "named_scenario",
    "network_task_name",
    "run_comparison",
    "run_scenario",
    "scenario_descriptions",
    "scenario_names",
    "scenario_pipeline",
    "scenario_task_name",
]
