"""Scenario evaluation results: per-scenario outputs and comparisons.

Results are plain frozen dataclasses so they pickle cleanly through the
pipeline's artifact store; :meth:`to_json_dict` flattens numpy values
for the CLI's ``--json`` output and the CI comparison artifact.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Scalar outputs shown in comparison tables, in display order.
_SCALAR_OUTPUTS = (
    "total_infected",
    "attack_rate",
    "mean_arrival_day",
    "peak_infectious",
    "forecast_skill_r",
    "forecast_skill_p",
    "forecast_median_error_days",
    "forecast_inferred_r0",
)


def _jsonable(value: object) -> object:
    if isinstance(value, np.ndarray):
        return [None if not np.isfinite(v) else float(v) for v in value.tolist()]
    if isinstance(value, (np.floating, np.integer)):
        value = value.item()
    if isinstance(value, float) and not np.isfinite(value):
        return None
    return value


@dataclass(frozen=True)
class ScenarioResult:
    """One scenario's requested outputs, plus enough context to read them."""

    name: str
    config: dict
    patch_names: tuple[str, ...]
    seed_city: str
    outputs: dict

    def scalars(self) -> dict[str, float]:
        """The scalar outputs present, in display order."""
        return {
            key: float(self.outputs[key])
            for key in _SCALAR_OUTPUTS
            if key in self.outputs
        }

    def render(self) -> str:
        """Human-readable summary: scalars, then the arrival ranking."""
        lines = [f"Scenario {self.name!r} (seed: {self.seed_city})"]
        description = self.config.get("description", "")
        if description:
            lines.append(f"  {description}")
        for intervention in self.config.get("interventions", []):
            spec = {k: v for k, v in intervention.items() if k != "kind"}
            lines.append(f"  intervention: {intervention['kind']} {spec}")
        for key, value in self.scalars().items():
            if key == "attack_rate":
                lines.append(f"  {key:<28s}{value:>12.1%}")
            elif abs(value) >= 1000:
                lines.append(f"  {key:<28s}{value:>12,.0f}")
            else:
                lines.append(f"  {key:<28s}{value:>12.3f}")
        arrivals = self.outputs.get("arrival_times")
        if arrivals is None:
            arrivals = self.outputs.get("forecast_predicted_arrival")
        if arrivals is not None:
            arrivals = np.asarray(arrivals, dtype=np.float64)
            order = np.argsort(arrivals)
            shown = []
            for index in order:
                if self.patch_names[index] == self.seed_city:
                    continue
                if not np.isfinite(arrivals[index]):
                    continue
                shown.append(f"{self.patch_names[index]}@{arrivals[index]:.0f}d")
                if len(shown) >= 8:
                    break
            if shown:
                lines.append(f"  first reached: {', '.join(shown)}")
        return "\n".join(lines)

    def to_json_dict(self) -> dict:
        """JSON-able form (arrays → lists, non-finite floats → null)."""
        return {
            "name": self.name,
            "config": self.config,
            "patch_names": list(self.patch_names),
            "seed_city": self.seed_city,
            "outputs": {key: _jsonable(value) for key, value in self.outputs.items()},
        }


@dataclass(frozen=True)
class ComparisonResult:
    """Member scenario results side by side; the first is the baseline."""

    results: tuple[ScenarioResult, ...]

    def __post_init__(self) -> None:
        if not self.results:
            raise ValueError("a comparison needs at least one scenario result")

    @property
    def baseline(self) -> ScenarioResult:
        """The reference scenario deltas are computed against."""
        return self.results[0]

    def render(self) -> str:
        """Delta table: every shared scalar output vs the baseline."""
        baseline = self.baseline.scalars()
        keys = [
            key
            for key in _SCALAR_OUTPUTS
            if key in baseline
            and all(key in result.scalars() for result in self.results)
        ]
        width = max(len(result.name) for result in self.results)
        header = f"  {'scenario':<{width + 2}s}" + "".join(f"{k:>28s}" for k in keys)
        lines = [f"Scenario comparison (baseline: {self.baseline.name}):", header]
        for result in self.results:
            scalars = result.scalars()
            cells = []
            for key in keys:
                value = scalars[key]
                delta = value - baseline[key]
                if result is self.baseline:
                    cells.append(f"{value:>28,.3f}")
                else:
                    cells.append(f"{value:>15,.3f} ({delta:>+9,.3f})")
            lines.append(f"  {result.name:<{width + 2}s}" + "".join(cells))
        return "\n".join(lines)

    def to_json_dict(self) -> dict:
        """JSON-able form: member results plus scalar deltas vs baseline."""
        baseline = self.baseline.scalars()
        deltas = {}
        for result in self.results[1:]:
            deltas[result.name] = {
                key: _jsonable(value - baseline[key])
                for key, value in result.scalars().items()
                if key in baseline
            }
        return {
            "baseline": self.baseline.name,
            "scenarios": [result.to_json_dict() for result in self.results],
            "deltas_vs_baseline": deltas,
        }
