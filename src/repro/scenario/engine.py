"""Scenario evaluation: one code path for every entry point.

The pipeline's scenario task bodies, the thin ablation benchmark
runners and the equivalence tests all call :func:`evaluate_on_network`
(or its context-level wrapper :func:`evaluate_scenario`), so a scenario
means exactly one computation no matter how it is invoked — which is
what makes the bit-match guarantees against the legacy ablation scripts
meaningful.
"""

from __future__ import annotations

import numpy as np

from repro.epidemic.interventions import EpidemicSetting, apply_stack, simulate_setting
from repro.epidemic.network import MobilityNetwork
from repro.epidemic.seir import SEIRParams, SEIRResult
from repro.experiments.epidemic_forecast import run_forecast_experiment
from repro.experiments.scales import ExperimentContext
from repro.scenario.config import ScenarioConfig
from repro.scenario.result import ScenarioResult


def build_setting(
    config: ScenarioConfig,
    network: MobilityNetwork,
    distances_km: np.ndarray | None = None,
) -> EpidemicSetting:
    """The post-intervention epidemic setting for a scenario."""
    params = SEIRParams(
        beta=config.epidemic.beta,
        sigma=config.epidemic.sigma,
        gamma=config.epidemic.gamma,
    )
    setting = EpidemicSetting(network=network, params=params, distances_km=distances_km)
    return apply_stack(setting, config.interventions)


def _epidemic_outputs(
    config: ScenarioConfig, setting: EpidemicSetting, result: SEIRResult
) -> dict:
    epidemic = config.epidemic
    seed_index = setting.network.names.index(epidemic.seed_city)
    arrivals = result.arrival_times(threshold=epidemic.arrival_threshold)
    outputs: dict = {}
    for kind in config.outputs:
        if kind == "arrival_times":
            outputs[kind] = arrivals
        elif kind == "total_infected":
            outputs[kind] = float(
                result.r[-1].sum() + result.i[-1].sum() + result.e[-1].sum()
            )
        elif kind == "attack_rate":
            total = float(result.r[-1].sum() + result.i[-1].sum() + result.e[-1].sum())
            outputs[kind] = total / float(setting.network.populations.sum())
        elif kind == "mean_arrival_day":
            finite = np.isfinite(arrivals)
            finite[seed_index] = False
            outputs[kind] = (
                float(arrivals[finite].mean()) if finite.any() else float("inf")
            )
        elif kind == "peak_times":
            outputs[kind] = result.peak_times()
        elif kind == "peak_infectious":
            outputs[kind] = float(result.i.sum(axis=1).max())
        else:  # pragma: no cover - from_dict already rejects unknown kinds
            raise ValueError(f"unknown output kind {kind!r}")
    return outputs


def _forecast_outputs(config: ScenarioConfig, setting: EpidemicSetting) -> dict:
    forecast = config.forecast
    assert forecast is not None
    experiment = run_forecast_experiment(
        None,
        seed_city=config.epidemic.seed_city,
        hidden_beta=forecast.hidden_beta,
        hidden_gamma=forecast.hidden_gamma,
        observation_days=forecast.observation_days,
        initial_cases=forecast.initial_cases,
        arrival_threshold=forecast.arrival_threshold,
        outbreak_seed=forecast.outbreak_seed,
        network=setting.network,
    )
    available = {
        "forecast_skill_r": float(experiment.skill.r),
        "forecast_skill_p": float(experiment.skill.p_value),
        "forecast_median_error_days": float(experiment.median_error_days),
        "forecast_inferred_r0": float(experiment.inferred.r0),
        "forecast_predicted_arrival": experiment.predicted_arrival,
        "forecast_actual_arrival": experiment.actual_arrival,
    }
    return {kind: available[kind] for kind in config.outputs}


def evaluate_on_network(
    config: ScenarioConfig,
    network: MobilityNetwork,
    distances_km: np.ndarray | None = None,
) -> ScenarioResult:
    """Evaluate a scenario on an already-built mobility network.

    ``distances_km`` is the world's centre-distance matrix; it is only
    required when the stack contains a distance-aware intervention
    (mode shift).
    """
    setting = build_setting(config, network, distances_km)
    if config.forecast is not None:
        outputs = _forecast_outputs(config, setting)
    else:
        epidemic = config.epidemic
        result = simulate_setting(
            setting,
            {epidemic.seed_city: epidemic.initial_cases},
            t_max_days=epidemic.t_max_days,
            dt_days=epidemic.dt_days,
        )
        outputs = _epidemic_outputs(config, setting, result)
    return ScenarioResult(
        name=config.name,
        config=config.to_dict(),
        patch_names=setting.network.names,
        seed_city=config.epidemic.seed_city,
        outputs=outputs,
    )


def evaluate_scenario(config: ScenarioConfig, context: ExperimentContext) -> ScenarioResult:
    """Evaluate a scenario against an experiment context's corpus.

    The network is fitted through the context's memoised caches, so
    evaluating many scenarios over one context (the benchmark runners,
    a comparison) fits each (scale, model) pair exactly once.  The
    context's corpus wins over ``config.corpus`` — the corpus spec only
    drives corpus *construction* in the compiled pipeline.
    """
    scale = config.world.scale
    network = context.network(
        scale, config.model.kind, config.model.trips_per_person_per_day
    )
    distances = context.world(scale).distance_matrix_km
    return evaluate_on_network(config, network, distances)
