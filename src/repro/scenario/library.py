"""The batteries-included named scenario library.

Each entry is a plain config dict — exactly what a user would put in a
JSON file — validated through :meth:`ScenarioConfig.from_dict` on
lookup.  The baseline/vaccination/forecast entries are the library form
of the legacy ablation scripts (A5, A13, A14) and are proven to
bit-match them by the equivalence suite in
``tests/scenario/test_equivalence.py``.
"""

from __future__ import annotations

import copy

from repro.scenario.config import ScenarioConfig, ScenarioConfigError

_DARWIN = {"seed_city": "Darwin"}

#: name → plain config dict.  Dicts omit whatever matches the defaults.
_LIBRARY: dict[str, dict] = {
    "baseline": {
        "description": "Unmitigated outbreak, Gravity 2Param coupling (legacy A5 arm).",
    },
    "baseline-radiation": {
        "description": "Unmitigated outbreak, Radiation coupling (legacy A5 arm).",
        "model": {"kind": "radiation"},
    },
    "lockdown-soft": {
        "description": "Halve travel to/from the seed city (advisory-level lockdown).",
        "interventions": [
            {"kind": "mobility_restriction", "patches": ["Sydney"], "factor": 0.5}
        ],
    },
    "lockdown-hard": {
        "description": "90% travel reduction to/from the seed city.",
        "interventions": [
            {"kind": "mobility_restriction", "patches": ["Sydney"], "factor": 0.1}
        ],
    },
    "lockdown-full": {
        "description": "Complete quarantine of the seed city.",
        "interventions": [
            {"kind": "mobility_restriction", "patches": ["Sydney"], "factor": 0.0}
        ],
    },
    "travel-shutdown": {
        "description": "All travel nationwide scaled to 20% (border-closure dial).",
        "interventions": [{"kind": "travel_scaling", "factor": 0.2}],
    },
    "mode-shift-local": {
        "description": "Long-haul trips (>500 km) suppressed to 20%, local trips up 25%.",
        "interventions": [
            {
                "kind": "mode_shift",
                "threshold_km": 500.0,
                "long_factor": 0.2,
                "short_factor": 1.25,
            }
        ],
    },
    "vaccination-none": {
        "description": "Darwin-seeded outbreak, no doses (legacy A14 'none' row).",
        "epidemic": dict(_DARWIN),
    },
    "vaccination-population": {
        "description": "15% coverage allocated by population (legacy A14 row).",
        "epidemic": dict(_DARWIN),
        "interventions": [
            {"kind": "vaccination", "strategy": "by_population", "dose_fraction": 0.15}
        ],
    },
    "vaccination-centrality": {
        "description": "15% coverage allocated by mobility centrality (legacy A14 row).",
        "epidemic": dict(_DARWIN),
        "interventions": [
            {"kind": "vaccination", "strategy": "by_centrality", "dose_fraction": 0.15}
        ],
    },
    "vaccination-ring": {
        "description": "15% coverage ring-allocated around the seed (legacy A14 row).",
        "epidemic": dict(_DARWIN),
        "interventions": [
            {
                "kind": "vaccination",
                "strategy": "seed_ring",
                "dose_fraction": 0.15,
                "seed_city": "Darwin",
            }
        ],
    },
    "vaccination-staged": {
        "description": "Staged campaign: 8% by population stacked with 7% by centrality.",
        "epidemic": dict(_DARWIN),
        "interventions": [
            {"kind": "vaccination", "strategy": "by_population", "dose_fraction": 0.08},
            {"kind": "vaccination", "strategy": "by_centrality", "dose_fraction": 0.07},
        ],
    },
    "variant-import": {
        "description": "A 30%-more-transmissible variant lands in Perth mid-stream.",
        "interventions": [
            {
                "kind": "variant_seeding",
                "city": "Perth",
                "cases": 20.0,
                "beta_multiplier": 1.3,
            }
        ],
    },
    "forecast-brisbane": {
        "description": "Forecast loop, Brisbane-seeded hidden outbreak (legacy A13 arm).",
        "epidemic": {"seed_city": "Brisbane"},
        "forecast": {},
    },
    "forecast-darwin": {
        "description": "Forecast loop, Darwin-seeded hidden outbreak (legacy A13 arm).",
        "epidemic": dict(_DARWIN),
        "forecast": {},
    },
    "forecast-horizon-30": {
        "description": "Forecast loop with a short 30-day sensing horizon.",
        "epidemic": {"seed_city": "Brisbane"},
        "forecast": {"observation_days": 30},
    },
    "forecast-horizon-90": {
        "description": "Forecast loop with a long 90-day sensing horizon.",
        "epidemic": {"seed_city": "Brisbane"},
        "forecast": {"observation_days": 90},
    },
}


def scenario_names() -> tuple[str, ...]:
    """All named scenarios, sorted."""
    return tuple(sorted(_LIBRARY))


def named_scenario(name: str) -> ScenarioConfig:
    """Look up and validate a named scenario."""
    if name not in _LIBRARY:
        raise ScenarioConfigError(
            f"unknown scenario {name!r}; known scenarios: {', '.join(scenario_names())}"
        )
    payload = copy.deepcopy(_LIBRARY[name])
    payload["name"] = name
    return ScenarioConfig.from_dict(payload)


def scenario_descriptions() -> dict[str, str]:
    """name → one-line description, for ``repro scenario list``."""
    return {name: _LIBRARY[name].get("description", "") for name in scenario_names()}
