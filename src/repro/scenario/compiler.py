"""Compile scenarios into pipeline DAG nodes.

A scenario compiles to four content-addressed tasks::

    corpus ── index ── network-<fp> ── scenario-<name>

``corpus`` and ``index`` are *the same tasks* (same names, params and
versions) the experiment suite uses, so scenario runs share cached
corpora with ``repro pipeline run``.  The network task is keyed by the
(world, model) fingerprint, so every scenario on one world/model pair
shares one fitted network artifact; the scenario task is keyed by the
canonical config dict, so permuting an intervention stack — or renaming
nothing — is a cache hit.  A comparison is just a bigger DAG: shared
corpus/index, deduplicated network nodes, one scenario node per member
and a ``compare`` join task, all sharded across ``--jobs`` workers.
"""

from __future__ import annotations

from repro.data.gazetteer import Scale
from repro.experiments.scales import ExperimentContext
from repro.pipeline.executor import Executor, RunResult
from repro.pipeline.graph import Pipeline
from repro.pipeline.graphs import corpus_task, index_task
from repro.pipeline.hashing import fingerprint
from repro.pipeline.store import ArtifactStore
from repro.pipeline.task import Task, TaskContext
from repro.scenario.config import ScenarioConfig, ScenarioConfigError
from repro.scenario.engine import evaluate_on_network
from repro.scenario.result import ComparisonResult, ScenarioResult

#: Code-version tags for the scenario tasks; bump to invalidate caches
#: when the corresponding computation changes meaning.
SCENARIO_TASK_VERSIONS = {
    "network": "1",
    "scenario": "1",
    "compare": "1",
}


def network_params(config: ScenarioConfig) -> dict:
    """The parameters that determine a scenario's fitted network."""
    return {
        "gazetteer": config.world.gazetteer,
        "scale": config.world.scale.value,
        "model": config.model.kind,
        "trips_per_person_per_day": config.model.trips_per_person_per_day,
    }


def network_task_name(config: ScenarioConfig) -> str:
    """Stable task name for a (world, model) network node."""
    return f"network-{fingerprint(network_params(config))[:10]}"


def scenario_task_name(config: ScenarioConfig) -> str:
    """The scenario node's task name."""
    return f"scenario-{config.name}"


def _task_network(ctx: TaskContext) -> dict:
    context = ExperimentContext(
        ctx.input("corpus"), index=ctx.input("index"), gazetteer=ctx.params["gazetteer"]
    )
    scale = Scale(ctx.params["scale"])
    return {
        "network": context.network(
            scale, ctx.params["model"], ctx.params["trips_per_person_per_day"]
        ),
        "distances_km": context.world(scale).distance_matrix_km,
    }


def _task_scenario(ctx: TaskContext) -> ScenarioResult:
    config = ScenarioConfig.from_dict(ctx.params["config"])
    bundle = ctx.input(ctx.params["network_task"])
    return evaluate_on_network(config, bundle["network"], bundle["distances_km"])


def _task_compare(ctx: TaskContext) -> ComparisonResult:
    return ComparisonResult(tuple(ctx.input(name) for name in ctx.params["members"]))


def _add_scenario_nodes(pipeline: Pipeline, config: ScenarioConfig) -> str:
    """Add a scenario's network + scenario tasks; returns the scenario name."""
    net_name = network_task_name(config)
    if net_name not in pipeline:
        pipeline.add(
            Task(
                name=net_name,
                fn=_task_network,
                deps=("corpus", "index"),
                params=network_params(config),
                version=SCENARIO_TASK_VERSIONS["network"],
            )
        )
    task_name = scenario_task_name(config)
    pipeline.add(
        Task(
            name=task_name,
            fn=_task_scenario,
            deps=(net_name,),
            params={"config": config.to_dict(), "network_task": net_name},
            version=SCENARIO_TASK_VERSIONS["scenario"],
        )
    )
    return task_name


def scenario_pipeline(config: ScenarioConfig) -> Pipeline:
    """The four-node DAG for one scenario."""
    pipeline = Pipeline([corpus_task(config.synth_config())])
    pipeline.add(index_task())
    _add_scenario_nodes(pipeline, config)
    pipeline.validate()
    return pipeline


def comparison_pipeline(configs: tuple[ScenarioConfig, ...]) -> Pipeline:
    """One DAG over all member scenarios plus a ``compare`` join node.

    Members must agree on the corpus and gazetteer (a comparison is a
    counterfactual sweep over one world, not a corpus sweep) and carry
    distinct names; network nodes are deduplicated by fingerprint.
    """
    if len(configs) < 2:
        raise ScenarioConfigError("a comparison needs at least two scenarios")
    names = [config.name for config in configs]
    if len(set(names)) != len(names):
        duplicated = sorted({n for n in names if names.count(n) > 1})
        raise ScenarioConfigError(
            f"duplicate scenario names in comparison: {', '.join(duplicated)}"
        )
    first = configs[0]
    for config in configs[1:]:
        if config.corpus != first.corpus or config.world.gazetteer != first.world.gazetteer:
            raise ScenarioConfigError(
                "comparison members must share one corpus spec and gazetteer; "
                f"{config.name!r} disagrees with {first.name!r}"
            )
    pipeline = Pipeline([corpus_task(first.synth_config())])
    pipeline.add(index_task())
    member_tasks = tuple(_add_scenario_nodes(pipeline, config) for config in configs)
    pipeline.add(
        Task(
            name="compare",
            fn=_task_compare,
            deps=member_tasks,
            params={"members": list(member_tasks)},
            version=SCENARIO_TASK_VERSIONS["compare"],
        )
    )
    pipeline.validate()
    return pipeline


def run_scenario(
    config: ScenarioConfig,
    store: ArtifactStore | None = None,
    jobs: int = 1,
    force: bool = False,
    trace: bool = False,
) -> tuple[ScenarioResult, RunResult]:
    """Run (or cache-resolve) one scenario; returns (result, provenance)."""
    pipeline = scenario_pipeline(config)
    executor = Executor(store=store, jobs=jobs, force=force, trace=trace)
    run = executor.run(pipeline, targets=(scenario_task_name(config),))
    return run.artifact(scenario_task_name(config)), run


def run_comparison(
    configs: tuple[ScenarioConfig, ...],
    store: ArtifactStore | None = None,
    jobs: int = 1,
    force: bool = False,
    trace: bool = False,
) -> tuple[ComparisonResult, RunResult]:
    """Run (or cache-resolve) a comparison; returns (result, provenance)."""
    pipeline = comparison_pipeline(tuple(configs))
    executor = Executor(store=store, jobs=jobs, force=force, trace=trace)
    run = executor.run(pipeline, targets=("compare",))
    return run.artifact("compare"), run
