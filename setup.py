"""Shim for environments without the ``wheel`` package.

``pip install -e .`` needs ``wheel`` to build a PEP 660 editable wheel;
on offline machines without it, ``python setup.py develop`` installs the
same editable package using only setuptools.  All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
